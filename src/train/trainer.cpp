#include "train/trainer.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <optional>

#include "fault/inject.h"
#include "nn/loss.h"
#include "telemetry/telemetry.h"
#include "tensor/spike_kernels.h"
#include "train/data_parallel.h"

namespace snnskip {

EncodingPlan make_encoding_plan(const Dataset& ds, NeuronMode mode,
                                const TrainConfig& cfg) {
  EncodingPlan plan;
  if (ds.timesteps() > 0) {
    // Event data carries its own time axis regardless of network mode.
    plan.timesteps = ds.timesteps();
    plan.encoder =
        std::make_unique<EventEncoder>(ds.timesteps(), ds.step_channels());
    return plan;
  }
  if (mode == NeuronMode::Analog) {
    plan.timesteps = 1;
    plan.encoder = std::make_unique<DirectEncoder>();
    return plan;
  }
  plan.timesteps = cfg.timesteps;
  switch (cfg.encoding) {
    case EncodingKind::Poisson:
      plan.encoder = std::make_unique<PoissonEncoder>(cfg.seed ^ 0x9042ULL);
      break;
    case EncodingKind::Latency:
      plan.encoder = std::make_unique<LatencyEncoder>(cfg.timesteps);
      break;
    default:
      plan.encoder = std::make_unique<DirectEncoder>();
      break;
  }
  return plan;
}

double clip_grad_norm(const std::vector<Parameter*>& params, float max_norm) {
  double sq = 0.0;
  for (const Parameter* p : params) {
    const float* g = p->grad.data();
    for (std::int64_t i = 0; i < p->grad.numel(); ++i) {
      sq += static_cast<double>(g[i]) * static_cast<double>(g[i]);
    }
  }
  const double norm = std::sqrt(sq);
  if (max_norm > 0.f && norm > max_norm) {
    const float scale = max_norm / static_cast<float>(norm + 1e-12);
    for (Parameter* p : params) p->grad.mul_(scale);
  }
  return norm;
}

StepLoss readout_loss(LossKind kind, const Tensor& output_sum,
                      const std::vector<std::int64_t>& targets,
                      std::int64_t timesteps) {
  StepLoss sl;
  if (kind == LossKind::CountMse) {
    // Counts = plain sum; dcount/dout_t == 1 at every step.
    sl.result = mse_count_loss(output_sum, targets, timesteps);
    sl.grad_per_step = sl.result.grad_logits;
  } else {
    Tensor mean_logits = output_sum;
    mean_logits.mul_(1.f / static_cast<float>(timesteps));
    sl.result = cross_entropy(mean_logits, targets);
    sl.grad_per_step = sl.result.grad_logits;
    sl.grad_per_step.mul_(1.f / static_cast<float>(timesteps));
  }
  return sl;
}

double train_batch(Network& net, Encoder& enc, const Batch& batch,
                   std::int64_t timesteps, Optimizer& opt, float grad_clip,
                   LossKind loss_kind, double* grad_norm_out) {
  SNNSKIP_SPAN("train", "batch");
  net.reset_state();
  enc.reset();
  opt.zero_grad();
  Telemetry::count("train.timesteps", static_cast<double>(timesteps));

  Tensor output_sum;
  {
    SNNSKIP_SPAN("train", "batch.forward");
    for (std::int64_t t = 0; t < timesteps; ++t) {
      Tensor in = enc.encode(batch.x, t);
      Tensor out = net.forward(in, /*train=*/true);
      if (t == 0) {
        output_sum = std::move(out);
      } else {
        output_sum.add_(out);
      }
    }
  }

  const StepLoss sl = readout_loss(loss_kind, output_sum, batch.y, timesteps);
  {
    SNNSKIP_SPAN("train", "batch.backward");
    for (std::int64_t t = timesteps; t-- > 0;) {
      (void)net.backward(sl.grad_per_step);
    }
  }
  {
    SNNSKIP_SPAN("train", "batch.step");
    auto params = net.parameters();
    const double grad_norm = clip_grad_norm(params, grad_clip);
    if (grad_norm_out != nullptr) *grad_norm_out = grad_norm;
    opt.step();
  }
  net.reset_state();
  return sl.result.loss;
}

EvalResult evaluate(Network& net, NeuronMode mode, const Dataset& ds,
                    const TrainConfig& cfg, FiringRateRecorder* recorder) {
  SNNSKIP_SPAN("train", "evaluate");
  EncodingPlan plan = make_encoding_plan(ds, mode, cfg);
  const SparseExec::Stats sparse_before = SparseExec::stats();
  if (recorder != nullptr) {
    recorder->reset();
    net.set_recorder(recorder);
  }

  DataLoader loader(ds, cfg.batch_size, /*shuffle=*/false, 0);
  Batch batch;
  loader.start_epoch(0);
  double loss_acc = 0.0;
  std::size_t correct = 0, total = 0, batches = 0;
  while (loader.next(batch)) {
    net.reset_state();
    plan.encoder->reset();
    Telemetry::count("train.timesteps", static_cast<double>(plan.timesteps));
    Tensor output_sum;
    for (std::int64_t t = 0; t < plan.timesteps; ++t) {
      Tensor in = plan.encoder->encode(batch.x, t);
      Tensor out = net.forward(in, /*train=*/false);
      if (t == 0) {
        output_sum = std::move(out);
      } else {
        output_sum.add_(out);
      }
    }
    const StepLoss sl =
        readout_loss(cfg.loss, output_sum, batch.y, plan.timesteps);
    loss_acc += sl.result.loss;
    correct += sl.result.correct;
    total += batch.y.size();
    ++batches;
  }
  net.reset_state();

  EvalResult res;
  res.accuracy =
      total ? static_cast<double>(correct) / static_cast<double>(total) : 0.0;
  res.loss = batches ? loss_acc / static_cast<double>(batches) : 0.0;
  if (recorder != nullptr) {
    // Achieved input density at sparse-eligible layers over this eval —
    // same nonzeros-per-element definition as the firing rate, so energy
    // accounting and benchmark output agree on what "sparsity" means.
    const SparseExec::Stats sparse_after = SparseExec::stats();
    const double d_nnz = sparse_after.nnz - sparse_before.nnz;
    const double d_elems = sparse_after.elements - sparse_before.elements;
    if (d_elems > 0.0) {
      recorder->record_density("sparse_eligible_inputs", d_nnz, d_elems);
    }
    res.firing_rate = recorder->overall_rate();
    net.set_recorder(nullptr);
  }
  return res;
}

namespace {

/// Fan-out for the observer hooks; also owns the `verbose` shim printer.
class ObserverList {
 public:
  ObserverList(const TrainConfig& cfg) : observers_(cfg.observers) {
    if (cfg.verbose) observers_.push_back(&shim_printer_);
  }
  template <typename Fn>
  void notify(Fn&& fn) {
    for (TrainObserver* obs : observers_) fn(*obs);
  }

 private:
  std::vector<TrainObserver*> observers_;
  ProgressPrinter shim_printer_;  // installed only when cfg.verbose
};

}  // namespace

FitResult fit(Network& net, NeuronMode mode, DatasetPtr train, DatasetPtr val,
              const TrainConfig& cfg) {
  SNNSKIP_SPAN("train", "fit");
  EncodingPlan plan = make_encoding_plan(*train, mode, cfg);

  // Rebuilt after a health rollback: contaminated momentum/moment buffers
  // would re-poison the restored weights on the very next step.
  auto make_optimizer = [&]() -> std::unique_ptr<Optimizer> {
    auto params = net.parameters();
    if (cfg.opt == OptKind::Adam) {
      return std::make_unique<Adam>(params, cfg.lr, 0.9f, 0.999f, 1e-8f,
                                    cfg.weight_decay);
    }
    return std::make_unique<Sgd>(params, cfg.lr, cfg.momentum,
                                 cfg.weight_decay);
  };
  std::unique_ptr<Optimizer> opt = make_optimizer();

  // Deterministic data-parallel engine: engaged only when the caller
  // supplies a replica factory AND the encoder supports shard streams;
  // otherwise the legacy serial path runs untouched.
  std::optional<DataParallelEngine> dp;
  if (cfg.data_parallel.replica_factory) {
    dp.emplace(net, cfg.data_parallel, *plan.encoder, plan.timesteps,
               cfg.loss);
    if (!dp->enabled()) dp.reset();
  }

  std::optional<HealthMonitor> monitor;
  if (cfg.health.enabled) {
    monitor.emplace(cfg.health);
    monitor->capture(net);
  }

  DataLoader loader(*train, cfg.batch_size, /*shuffle=*/true, cfg.seed);
  FitResult result;
  ObserverList observers(cfg);
  observers.notify([&](TrainObserver& o) { o.on_train_begin(cfg); });

  for (std::int64_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    SNNSKIP_SPAN("train", "epoch");
    observers.notify([&](TrainObserver& o) { o.on_epoch_begin(epoch); });
    const double lr_scale = monitor ? monitor->lr_scale() : 1.0;
    opt->set_lr(static_cast<float>(cfg.lr * lr_scale *
                std::pow(cfg.lr_decay, static_cast<float>(epoch))));
    loader.start_epoch(static_cast<std::uint64_t>(epoch));
    Batch batch;
    double loss_acc = 0.0;
    std::size_t batches = 0;
    bool rolled_back = false;
    while (loader.next(batch)) {
      double grad_norm = 0.0;
      const double loss =
          dp ? dp->train_batch(batch, *opt, cfg.grad_clip, &grad_norm)
             : train_batch(net, *plan.encoder, batch, plan.timesteps, *opt,
                           cfg.grad_clip, cfg.loss, &grad_norm);
      if (SNNSKIP_FAULT("train.nan")) {
        // Injected divergence (fault tests): poison one weight the way a
        // blown-up surrogate gradient would.
        auto ps = net.parameters();
        if (!ps.empty() && ps[0]->value.numel() > 0) {
          ps[0]->value.data()[0] = std::numeric_limits<float>::quiet_NaN();
        }
      }
      if (monitor && !monitor->check(net, loss, grad_norm)) {
        if (!monitor->recover(net)) {
          result.diverged = true;
          result.health_retries = monitor->retries();
          observers.notify([&](TrainObserver& o) { o.on_train_end(result); });
          return result;
        }
        opt = make_optimizer();
        rolled_back = true;
        break;
      }
      loss_acc += loss;
      BatchStats bs;
      bs.epoch = epoch;
      bs.batch = static_cast<std::int64_t>(batches);
      bs.batch_size = static_cast<std::int64_t>(batch.y.size());
      bs.loss = loss;
      bs.grad_norm = grad_norm;
      observers.notify([&](TrainObserver& o) { o.on_batch_end(bs); });
      ++batches;
    }
    if (rolled_back) {
      // Redo this epoch from the restored last-good state at half the LR.
      --epoch;
      continue;
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = batches ? loss_acc / static_cast<double>(batches) : 0.0;
    if (val) {
      stats.val_acc = evaluate(net, mode, *val, cfg).accuracy;
      result.best_val_acc = std::max(result.best_val_acc, stats.val_acc);
      result.final_val_acc = stats.val_acc;
    }
    observers.notify([&](TrainObserver& o) { o.on_epoch_end(stats); });
    result.epochs.push_back(stats);
    if (monitor) monitor->capture(net);  // this epoch is the new last-good
  }
  if (monitor) result.health_retries = monitor->retries();
  observers.notify([&](TrainObserver& o) { o.on_train_end(result); });
  return result;
}

}  // namespace snnskip
