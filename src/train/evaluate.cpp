#include "train/evaluate.h"

#include <stdexcept>

#include "data/synthetic_cifar10.h"
#include "data/synthetic_dvs_cifar.h"
#include "data/synthetic_dvs_gesture.h"

namespace snnskip {

std::vector<std::string> dataset_names() {
  return {"cifar10", "cifar10-dvs", "dvs128-gesture"};
}

DatasetBundle make_datasets(const std::string& name,
                            const SyntheticConfig& cfg) {
  DatasetBundle bundle;
  bundle.name = name;
  if (name == "cifar10") {
    bundle.train = std::make_shared<SyntheticCifar10>(cfg, Split::Train);
    bundle.val = std::make_shared<SyntheticCifar10>(cfg, Split::Val);
    bundle.test = std::make_shared<SyntheticCifar10>(cfg, Split::Test);
    bundle.has_ann_reference = true;  // static images: ANN twin is defined
  } else if (name == "cifar10-dvs") {
    bundle.train = std::make_shared<SyntheticDvsCifar>(cfg, Split::Train);
    bundle.val = std::make_shared<SyntheticDvsCifar>(cfg, Split::Val);
    bundle.test = std::make_shared<SyntheticDvsCifar>(cfg, Split::Test);
  } else if (name == "dvs128-gesture") {
    bundle.train = std::make_shared<SyntheticDvsGesture>(cfg, Split::Train);
    bundle.val = std::make_shared<SyntheticDvsGesture>(cfg, Split::Val);
    bundle.test = std::make_shared<SyntheticDvsGesture>(cfg, Split::Test);
  } else {
    throw std::invalid_argument("make_datasets: unknown dataset " + name);
  }
  return bundle;
}

}  // namespace snnskip
