#include "train/observer.h"

#include <string>

#include "telemetry/retained.h"
#include "telemetry/telemetry.h"
#include "tensor/workspace.h"
#include "util/logging.h"

namespace snnskip {

void ProgressPrinter::on_epoch_end(const EpochStats& stats) {
  SNNSKIP_LOG(Info) << "epoch " << stats.epoch << " loss=" << stats.train_loss
                    << " val_acc=" << stats.val_acc;
}

void TelemetryObserver::on_epoch_begin(std::int64_t epoch) {
  telemetry::instant("train", "epoch " + std::to_string(epoch) + " begin");
}

void TelemetryObserver::on_batch_end(const BatchStats& stats) {
  Telemetry::count("train.batches");
  Telemetry::count("train.samples", static_cast<double>(stats.batch_size));
}

void TelemetryObserver::on_epoch_end(const EpochStats& stats) {
  Telemetry::count("train.epochs");
  // This thread's arena high-water mark: together with Workspace's
  // zero-steady-state-alloc property it shows how much scratch the
  // timestep loop actually pinned.
  Telemetry::count_max(
      "arena.high_water_floats",
      static_cast<double>(Workspace::tls().high_water()));
  // Peak bytes of BPTT contexts held across the epoch's timestep windows —
  // the number the sparse-context retention (ISSUE 4) is meant to shrink.
  Telemetry::count_max(
      "bptt.retained_bytes.high_water",
      static_cast<double>(RetainedActivations::high_water()));
  telemetry::instant("train",
                     "epoch " + std::to_string(stats.epoch) + " end");
}

}  // namespace snnskip
