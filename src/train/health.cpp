#include "train/health.h"

#include <cmath>

#include "telemetry/telemetry.h"
#include "util/logging.h"
#include "util/runtime_env.h"

namespace snnskip {

namespace {

bool tensor_finite(const Tensor& t) {
  const float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

}  // namespace

HealthConfig default_health_config() {
  HealthConfig cfg;
  cfg.max_retries =
      static_cast<int>(env::get_int("SNNSKIP_MAX_RETRIES", cfg.max_retries));
  if (cfg.max_retries < 0) cfg.max_retries = 0;
  return cfg;
}

void HealthMonitor::capture(Network& net) {
  param_snapshot_.clear();
  buffer_snapshot_.clear();
  for (Parameter* p : net.parameters()) param_snapshot_.push_back(p->value);
  for (auto& [name, tensor] : net.buffers()) {
    (void)name;
    buffer_snapshot_.push_back(*tensor);
  }
}

bool HealthMonitor::check(Network& net, double loss, double grad_norm) {
  ++batches_seen_;
  if (!std::isfinite(loss)) {
    reason_ = "non-finite loss";
    return false;
  }
  if (loss > cfg_.abs_loss_limit) {
    reason_ = "loss above absolute limit";
    return false;
  }
  if (!std::isfinite(grad_norm)) {
    reason_ = "non-finite gradient norm";
    return false;
  }
  if (finite_losses_ >= cfg_.warmup_batches &&
      loss > cfg_.loss_explode_factor * (loss_avg_ + 1e-12)) {
    reason_ = "loss explosion";
    return false;
  }
  // Running average over finite losses only (a diverged batch never gets
  // to skew the baseline it is judged against).
  loss_avg_ = finite_losses_ == 0 ? loss : 0.9 * loss_avg_ + 0.1 * loss;
  ++finite_losses_;

  if (cfg_.param_scan_interval > 0 &&
      batches_seen_ % cfg_.param_scan_interval == 0) {
    for (Parameter* p : net.parameters()) {
      if (!tensor_finite(p->value)) {
        reason_ = "non-finite parameter " + p->name;
        return false;
      }
    }
  }
  return true;
}

bool HealthMonitor::recover(Network& net) {
  if (retries_ >= cfg_.max_retries) {
    Telemetry::count("health.failures");
    SNNSKIP_LOG(Warn) << "health: " << reason_ << "; retry budget ("
                      << cfg_.max_retries << ") exhausted, fit failed";
    return false;
  }
  ++retries_;
  lr_scale_ *= 0.5;
  auto params = net.parameters();
  auto buffers = net.buffers();
  // Snapshots are taken from the same network, so the orders match.
  for (std::size_t i = 0; i < params.size() && i < param_snapshot_.size();
       ++i) {
    params[i]->value = param_snapshot_[i];
    params[i]->zero_grad();
  }
  for (std::size_t i = 0; i < buffers.size() && i < buffer_snapshot_.size();
       ++i) {
    *buffers[i].second = buffer_snapshot_[i];
  }
  // The loss baseline belongs to the diverged trajectory; restart it.
  loss_avg_ = 0.0;
  finite_losses_ = 0;
  Telemetry::count("health.rollbacks");
  SNNSKIP_LOG(Warn) << "health: " << reason_ << "; rolled back to last-good "
                    << "snapshot, lr scale now " << lr_scale_ << " (retry "
                    << retries_ << "/" << cfg_.max_retries << ")";
  return true;
}

}  // namespace snnskip
