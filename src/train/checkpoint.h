#pragma once
// Network checkpointing: serialize parameters (and a WeightStore) to a
// simple self-describing binary format so long searches can be resumed and
// trained models shipped.
//
// Format (little-endian):
//   magic "SNNSKIP1" | u64 count | count x entry
//   entry: u32 name_len | name bytes | u32 ndim | i64 dims[ndim] | f32 data
//
// Loading matches entries to parameters BY NAME and checks shapes; extra
// entries in the file are ignored, missing parameters are reported.

#include <string>
#include <vector>

#include "graph/network.h"
#include "train/weight_store.h"

namespace snnskip {

/// One named tensor in a checkpoint file.
struct CheckpointEntry {
  std::string name;
  Tensor value;
};

/// Write entries to `path`. Returns false on I/O failure.
bool save_entries(const std::string& path,
                  const std::vector<CheckpointEntry>& entries);

/// Read all entries from `path`. Returns false on I/O or format error.
bool load_entries(const std::string& path,
                  std::vector<CheckpointEntry>& entries);

/// Save every parameter of `net` (names must be unique, which the model
/// builders guarantee).
bool save_network(const std::string& path, Network& net);

/// Load parameters into `net` by name. Returns the number of parameters
/// restored; parameters without a matching entry are left untouched.
/// Shape mismatches are skipped with a warning.
std::size_t load_network(const std::string& path, Network& net);

}  // namespace snnskip
