#pragma once
// Network checkpointing: serialize parameters (and a WeightStore) to a
// simple self-describing binary format so long searches can be resumed and
// trained models shipped.
//
// v2 format (little-endian), crash-safe (ISSUE 3):
//   magic "SNNSKIP2" | u64 count | count x entry
//   entry: u32 name_len | name bytes | u32 ndim | i64 dims[ndim]
//          | u32 crc32(payload) | f32 data
//
// Writes go to `<path>.tmp`, are fsync'd, and atomically renamed over the
// target, so a crash mid-write leaves the previous checkpoint intact.
// Loading validates every header field against the actual file size
// before allocating (a corrupted count/dims can no longer trigger huge
// allocations), verifies each tensor's CRC-32, and on ANY error returns
// false with `entries` cleared — a checkpoint is restored whole or not at
// all. v1 files ("SNNSKIP1", no checksums) still load with the same
// bounds validation.
//
// Loading matches entries to parameters BY NAME and checks shapes; extra
// entries in the file are ignored, missing parameters are reported.

#include <string>
#include <vector>

#include "graph/network.h"
#include "train/weight_store.h"

namespace snnskip {

/// One named tensor in a checkpoint file.
struct CheckpointEntry {
  std::string name;
  Tensor value;
};

/// Write entries to `path`. Returns false on I/O failure.
bool save_entries(const std::string& path,
                  const std::vector<CheckpointEntry>& entries);

/// Read all entries from `path`. Returns false on I/O or format error.
bool load_entries(const std::string& path,
                  std::vector<CheckpointEntry>& entries);

/// Save every parameter of `net` (names must be unique, which the model
/// builders guarantee).
bool save_network(const std::string& path, Network& net);

/// Load parameters into `net` by name. Returns the number of parameters
/// restored; parameters without a matching entry are left untouched.
/// Shape mismatches are skipped with a warning.
std::size_t load_network(const std::string& path, Network& net);

}  // namespace snnskip
