#include "train/data_parallel.h"

#include <atomic>
#include <cstring>
#include <future>
#include <stdexcept>
#include <utility>

#include "parallel/thread_pool.h"
#include "telemetry/telemetry.h"
#include "tensor/kernel_config.h"
#include "util/runtime_env.h"

namespace snnskip {

namespace {

/// Contiguous sample rows [b, e) of a stacked (N, ...) batch tensor. The
/// storage is row-major, so a row range is one contiguous span.
Tensor slice_batch_rows(const Tensor& x, std::int64_t b, std::int64_t e) {
  const Shape& s = x.shape();
  const std::int64_t per_sample = s[0] > 0 ? x.numel() / s[0] : 0;
  std::vector<std::int64_t> dims = s.dims();
  dims[0] = e - b;
  Tensor out{Shape(std::move(dims))};
  std::memcpy(out.data(), x.data() + b * per_sample,
              static_cast<std::size_t>((e - b) * per_sample) * sizeof(float));
  return out;
}

}  // namespace

std::int64_t DataParallelEngine::resolve_shards(const DataParallelConfig& cfg) {
  // Explicit config wins; otherwise the kernel config (tuning profile) may
  // move the shard count off kDataParallelDefaultShards. NOTE: the shard
  // count fixes the gradient reduction tree, so different shard counts are
  // different (each internally deterministic) numerical schedules.
  if (cfg.shards > 0) return cfg.shards;
  const int tuned = kernel_config().shards;
  return tuned > 0 ? tuned : kDataParallelDefaultShards;
}

std::int64_t DataParallelEngine::resolve_workers(
    const DataParallelConfig& cfg) {
  return cfg.workers > 0 ? cfg.workers : env::workers(1);
}

std::pair<std::int64_t, std::int64_t> DataParallelEngine::shard_range(
    std::int64_t n, std::int64_t shards, std::int64_t s) {
  // Same ceil-div chunking as parallel_for_range: early shards get `chunk`
  // samples; tail shards past ceil(n / chunk) come out empty and contribute
  // zeros to the reduction.
  const std::int64_t chunk = (n + shards - 1) / shards;
  const std::int64_t b = s * chunk;
  return {std::min(b, n), std::min(b + chunk, n)};
}

DataParallelEngine::DataParallelEngine(Network& primary,
                                       const DataParallelConfig& cfg,
                                       Encoder& enc, std::int64_t timesteps,
                                       LossKind loss)
    : primary_(&primary),
      base_encoder_(&enc),
      timesteps_(timesteps),
      loss_(loss),
      shards_(resolve_shards(cfg)),
      workers_(resolve_workers(cfg)) {
  if (!cfg.replica_factory || shards_ <= 1) return;
  encoders_.reserve(static_cast<std::size_t>(shards_));
  for (std::int64_t s = 0; s < shards_; ++s) {
    std::unique_ptr<Encoder> es =
        enc.clone_shard(static_cast<std::uint64_t>(s));
    if (!es) {  // encoder cannot be sharded -> engine stays disabled
      encoders_.clear();
      return;
    }
    encoders_.push_back(std::move(es));
  }
  replicas_.reserve(static_cast<std::size_t>(shards_));
  const auto prim_params = primary_->parameters();
  const auto prim_buffers = primary_->buffers();
  for (std::int64_t s = 0; s < shards_; ++s) {
    Network rep = cfg.replica_factory();
    const auto rp = rep.parameters();
    const auto rb = rep.buffers();
    bool ok = rp.size() == prim_params.size() && rb.size() == prim_buffers.size();
    for (std::size_t i = 0; ok && i < rp.size(); ++i) {
      ok = rp[i]->value.shape() == prim_params[i]->value.shape();
    }
    for (std::size_t i = 0; ok && i < rb.size(); ++i) {
      ok = rb[i].second->shape() == prim_buffers[i].second->shape();
    }
    if (!ok) {
      throw std::runtime_error(
          "DataParallelEngine: replica_factory produced a structurally "
          "different network (parameter/buffer layout mismatch)");
    }
    replicas_.push_back(std::move(rep));
  }
  shard_loss_.assign(static_cast<std::size_t>(shards_), 0.0);
}

void DataParallelEngine::run_shard(std::int64_t s,
                                   std::int64_t effective_shards,
                                   const Batch& batch) {
  SNNSKIP_SPAN("train", "dp.shard");
  const std::int64_t n = batch.size();
  const auto [b, e] = shard_range(n, effective_shards, s);
  const float w =
      static_cast<float>(e - b) / static_cast<float>(n);  // w_s = n_s / N

  Network& rep = replicas_[static_cast<std::size_t>(s)];
  if (b == e) {
    // Ceil-div chunking can leave tail shards empty (e.g. 10 samples over
    // 8 shards -> 5 chunks of 2). An empty shard contributes exact zeros
    // to the tree so the reduction shape stays fixed.
    for (Parameter* p : rep.parameters()) p->zero_grad();
    for (const auto& named : rep.buffers()) named.second->fill(0.f);
    shard_loss_[static_cast<std::size_t>(s)] = 0.0;
    return;
  }
  const auto rp = rep.parameters();
  const auto pp = primary_->parameters();
  for (std::size_t i = 0; i < rp.size(); ++i) {
    rp[i]->value = pp[i]->value;  // deep copy: replica starts at primary
    rp[i]->zero_grad();
  }
  const auto rb = rep.buffers();
  const auto pb = primary_->buffers();
  for (std::size_t i = 0; i < rb.size(); ++i) {
    *rb[i].second = *pb[i].second;
  }

  Batch shard;
  shard.x = slice_batch_rows(batch.x, b, e);
  shard.y.assign(batch.y.begin() + b, batch.y.begin() + e);

  rep.reset_state();
  Encoder& enc = *encoders_[static_cast<std::size_t>(s)];
  enc.reset();
  Tensor output_sum;
  for (std::int64_t t = 0; t < timesteps_; ++t) {
    Tensor in = enc.encode(shard.x, t);
    Tensor out = rep.forward(in, /*train=*/true);
    if (t == 0) {
      output_sum = std::move(out);
    } else {
      output_sum.add_(out);
    }
  }
  const StepLoss sl = readout_loss(loss_, output_sum, shard.y, timesteps_);
  for (std::int64_t t = timesteps_; t-- > 0;) {
    (void)rep.backward(sl.grad_per_step);
  }
  rep.reset_state();

  // Scale this shard's contribution BEFORE the tree reduction so the
  // combined result is the whole-batch mean decomposition Σ w_s · grad_s
  // (and the w_s-weighted BN buffer average). Done inside the shard task:
  // it is a pure function of the shard, not of the execution schedule.
  for (Parameter* p : rp) p->grad.mul_(w);
  for (const auto& named : rb) named.second->mul_(w);
  shard_loss_[static_cast<std::size_t>(s)] =
      sl.result.loss * static_cast<double>(w);
}

double DataParallelEngine::train_batch(const Batch& batch, Optimizer& opt,
                                       float grad_clip,
                                       double* grad_norm_out) {
  const std::int64_t n = batch.size();
  const std::int64_t S = std::min<std::int64_t>(shards_, n);
  if (S <= 1) {
    // Single-sample batches have no shard decomposition; run the legacy
    // whole-batch step on the primary with the ORIGINAL encoder stream.
    return snnskip::train_batch(*primary_, *base_encoder_, batch, timesteps_,
                                opt, grad_clip, loss_, grad_norm_out);
  }
  SNNSKIP_SPAN("train", "dp.batch");
  primary_->reset_state();
  opt.zero_grad();
  Telemetry::count("train.timesteps", static_cast<double>(timesteps_));

  // Atomic-counter drain: the decomposition is fixed, only WHICH worker
  // picks up a shard varies — and shard results are combined below in a
  // schedule-independent tree, so the assignment does not matter.
  std::atomic<std::int64_t> next{0};
  auto drain = [&] {
    for (std::int64_t s; (s = next.fetch_add(1)) < S;) {
      run_shard(s, S, batch);
    }
  };
  const std::int64_t concurrency = std::min<std::int64_t>(workers_, S);
  Telemetry::count_max("train.workers", static_cast<double>(concurrency));
  if (concurrency <= 1 || ThreadPool::on_worker_thread()) {
    drain();  // serial execution of the identical sharded computation
  } else {
    std::vector<std::future<void>> helpers;
    helpers.reserve(static_cast<std::size_t>(concurrency - 1));
    for (std::int64_t i = 0; i < concurrency - 1; ++i) {
      helpers.push_back(ThreadPool::global().submit(drain));
    }
    drain();  // the caller participates
    for (auto& h : helpers) h.get();
  }

  // Fixed-shape binary tree reduction (stride doubling). The addition
  // order is a function of S alone, so the floating-point result is
  // identical no matter how many workers ran the shards.
  for (std::int64_t stride = 1; stride < S; stride *= 2) {
    for (std::int64_t s = 0; s + stride < S; s += 2 * stride) {
      const auto pa = replicas_[static_cast<std::size_t>(s)].parameters();
      const auto pbr =
          replicas_[static_cast<std::size_t>(s + stride)].parameters();
      for (std::size_t i = 0; i < pa.size(); ++i) {
        pa[i]->grad.add_(pbr[i]->grad);
      }
      const auto ba = replicas_[static_cast<std::size_t>(s)].buffers();
      const auto bb =
          replicas_[static_cast<std::size_t>(s + stride)].buffers();
      for (std::size_t i = 0; i < ba.size(); ++i) {
        ba[i].second->add_(*bb[i].second);
      }
      shard_loss_[static_cast<std::size_t>(s)] +=
          shard_loss_[static_cast<std::size_t>(s + stride)];
    }
  }

  const auto pp = primary_->parameters();
  const auto rp0 = replicas_[0].parameters();
  for (std::size_t i = 0; i < pp.size(); ++i) {
    pp[i]->grad = rp0[i]->grad;
  }
  const auto pb = primary_->buffers();
  const auto rb0 = replicas_[0].buffers();
  for (std::size_t i = 0; i < pb.size(); ++i) {
    *pb[i].second = *rb0[i].second;
  }

  const double grad_norm = clip_grad_norm(pp, grad_clip);
  if (grad_norm_out != nullptr) *grad_norm_out = grad_norm;
  opt.step();
  return shard_loss_[0];
}

}  // namespace snnskip
