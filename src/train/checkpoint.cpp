#include "train/checkpoint.h"

#include <cstring>
#include <fstream>

#include "util/logging.h"

namespace snnskip {

namespace {
constexpr char kMagic[8] = {'S', 'N', 'N', 'S', 'K', 'I', 'P', '1'};

template <typename T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool read_pod(std::ifstream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  return in.good();
}
}  // namespace

bool save_entries(const std::string& path,
                  const std::vector<CheckpointEntry>& entries) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    SNNSKIP_LOG(Warn) << "checkpoint: cannot open " << path << " for write";
    return false;
  }
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, static_cast<std::uint64_t>(entries.size()));
  for (const auto& e : entries) {
    write_pod(out, static_cast<std::uint32_t>(e.name.size()));
    out.write(e.name.data(), static_cast<std::streamsize>(e.name.size()));
    const auto& dims = e.value.shape().dims();
    write_pod(out, static_cast<std::uint32_t>(dims.size()));
    for (std::int64_t d : dims) write_pod(out, d);
    out.write(reinterpret_cast<const char*>(e.value.data()),
              static_cast<std::streamsize>(sizeof(float) *
                                           static_cast<std::size_t>(
                                               e.value.numel())));
  }
  return out.good();
}

bool load_entries(const std::string& path,
                  std::vector<CheckpointEntry>& entries) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SNNSKIP_LOG(Warn) << "checkpoint: cannot open " << path;
    return false;
  }
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    SNNSKIP_LOG(Warn) << "checkpoint: bad magic in " << path;
    return false;
  }
  std::uint64_t count = 0;
  if (!read_pod(in, count)) return false;
  entries.clear();
  entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    CheckpointEntry e;
    std::uint32_t name_len = 0;
    if (!read_pod(in, name_len) || name_len > (1u << 20)) return false;
    e.name.resize(name_len);
    in.read(e.name.data(), name_len);
    std::uint32_t ndim = 0;
    if (!read_pod(in, ndim) || ndim > 8) return false;
    std::vector<std::int64_t> dims(ndim);
    for (auto& d : dims) {
      if (!read_pod(in, d) || d < 0) return false;
    }
    Shape shape(dims);
    Tensor value(shape);
    in.read(reinterpret_cast<char*>(value.data()),
            static_cast<std::streamsize>(
                sizeof(float) * static_cast<std::size_t>(value.numel())));
    if (!in.good()) return false;
    e.value = std::move(value);
    entries.push_back(std::move(e));
  }
  return true;
}

bool save_network(const std::string& path, Network& net) {
  std::vector<CheckpointEntry> entries;
  for (Parameter* p : net.parameters()) {
    entries.push_back(CheckpointEntry{p->name, p->value});
  }
  // Batch-norm running statistics live outside parameters() but are part
  // of the model: an eval-mode forward is wrong without them.
  for (auto& [name, tensor] : net.buffers()) {
    entries.push_back(CheckpointEntry{name, *tensor});
  }
  return save_entries(path, entries);
}

std::size_t load_network(const std::string& path, Network& net) {
  std::vector<CheckpointEntry> entries;
  if (!load_entries(path, entries)) return 0;

  auto restore = [&entries](const std::string& name,
                            Tensor& target) -> bool {
    for (const auto& e : entries) {
      if (e.name != name) continue;
      if (e.value.shape() != target.shape()) {
        SNNSKIP_LOG(Warn) << "checkpoint: shape mismatch for " << name
                          << " (file " << e.value.shape().str() << " vs "
                          << target.shape().str() << "), skipped";
        return false;
      }
      target = e.value;
      return true;
    }
    return false;
  };

  std::size_t restored = 0;
  auto params = net.parameters();
  for (Parameter* p : params) {
    if (restore(p->name, p->value)) ++restored;
  }
  std::size_t buffers_restored = 0;
  auto buffers = net.buffers();
  for (auto& [name, tensor] : buffers) {
    if (restore(name, *tensor)) ++buffers_restored;
  }
  if (restored != params.size() || buffers_restored != buffers.size()) {
    SNNSKIP_LOG(Warn) << "checkpoint: restored " << restored << "/"
                      << params.size() << " parameters and "
                      << buffers_restored << "/" << buffers.size()
                      << " buffers from " << path;
  }
  return restored;
}

}  // namespace snnskip
