#include "train/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "fault/inject.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace snnskip {

namespace {
constexpr char kMagicV1[8] = {'S', 'N', 'N', 'S', 'K', 'I', 'P', '1'};
constexpr char kMagicV2[8] = {'S', 'N', 'N', 'S', 'K', 'I', 'P', '2'};

// Header sanity bounds: generous for real models, tight enough that a
// corrupted field cannot drive allocation sizes.
constexpr std::uint32_t kMaxNameLen = 1u << 20;
constexpr std::uint32_t kMaxNdim = 8;

template <typename T>
bool write_pod(std::FILE* f, const T& v) {
  return std::fwrite(&v, sizeof(T), 1, f) == 1;
}

template <typename T>
bool read_pod(std::ifstream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  return in.good();
}

/// Durably replace `path` with the bytes produced by `emit`: write to a
/// temp file in the same directory, fsync, then atomically rename. A
/// crash at any point leaves either the old file or the new one, never a
/// torn mixture.
template <typename Emit>
bool atomic_write(const std::string& path, Emit&& emit) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    SNNSKIP_LOG(Warn) << "checkpoint: cannot open " << tmp << " for write";
    return false;
  }
  bool ok = emit(f);
  if (ok && SNNSKIP_FAULT("checkpoint.write_fail")) ok = false;  // injected I/O error
  if (ok) {
    ok = std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  }
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    std::remove(tmp.c_str());
    SNNSKIP_LOG(Warn) << "checkpoint: write to " << tmp << " failed";
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    SNNSKIP_LOG(Warn) << "checkpoint: rename to " << path << " failed";
    return false;
  }
  if (SNNSKIP_FAULT("checkpoint.torn")) {
    // Injected torn write (fault tests): chop trailing bytes off the
    // final file, as a non-atomic filesystem could after a crash.
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    const auto cut =
        static_cast<std::uintmax_t>(fault::payload("checkpoint.torn"));
    if (!ec && size > cut) std::filesystem::resize_file(path, size - cut, ec);
  }
  return true;
}

}  // namespace

bool save_entries(const std::string& path,
                  const std::vector<CheckpointEntry>& entries) {
  return atomic_write(path, [&entries](std::FILE* f) {
    if (std::fwrite(kMagicV2, sizeof(kMagicV2), 1, f) != 1) return false;
    if (!write_pod(f, static_cast<std::uint64_t>(entries.size()))) {
      return false;
    }
    for (const auto& e : entries) {
      if (!write_pod(f, static_cast<std::uint32_t>(e.name.size()))) {
        return false;
      }
      if (!e.name.empty() &&
          std::fwrite(e.name.data(), e.name.size(), 1, f) != 1) {
        return false;
      }
      const auto& dims = e.value.shape().dims();
      if (!write_pod(f, static_cast<std::uint32_t>(dims.size()))) {
        return false;
      }
      for (std::int64_t d : dims) {
        if (!write_pod(f, d)) return false;
      }
      const std::size_t bytes =
          sizeof(float) * static_cast<std::size_t>(e.value.numel());
      if (!write_pod(f, crc32(e.value.data(), bytes))) return false;
      if (bytes > 0 && std::fwrite(e.value.data(), bytes, 1, f) != 1) {
        return false;
      }
    }
    return true;
  });
}

bool load_entries(const std::string& path,
                  std::vector<CheckpointEntry>& entries) {
  entries.clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SNNSKIP_LOG(Warn) << "checkpoint: cannot open " << path;
    return false;
  }
  in.seekg(0, std::ios::end);
  const std::int64_t file_size = static_cast<std::int64_t>(in.tellg());
  in.seekg(0, std::ios::beg);

  // Every claimed size is checked against the bytes actually left in the
  // file BEFORE any allocation: a corrupted header fails cleanly instead
  // of driving a multi-gigabyte resize. On any failure the partial
  // `loaded` vector is dropped, so callers never see a half checkpoint.
  auto fail = [&entries, &path](const char* why) {
    SNNSKIP_LOG(Warn) << "checkpoint: " << why << " in " << path;
    entries.clear();
    return false;
  };

  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good()) return fail("unreadable header");
  bool has_crc;
  if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) {
    has_crc = true;
  } else if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0) {
    has_crc = false;
  } else {
    return fail("bad magic");
  }

  std::uint64_t count = 0;
  if (!read_pod(in, count)) return fail("unreadable entry count");
  // Smallest possible entry: name_len + ndim (+ crc) with no name, no
  // dims, no payload.
  const std::int64_t min_entry = has_crc ? 12 : 8;
  std::int64_t remaining = file_size - static_cast<std::int64_t>(in.tellg());
  if (count > static_cast<std::uint64_t>(remaining / min_entry)) {
    return fail("entry count exceeds file size");
  }

  std::vector<CheckpointEntry> loaded;
  loaded.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    CheckpointEntry e;
    std::uint32_t name_len = 0;
    if (!read_pod(in, name_len)) return fail("truncated entry");
    remaining = file_size - static_cast<std::int64_t>(in.tellg());
    if (name_len > kMaxNameLen ||
        static_cast<std::int64_t>(name_len) > remaining) {
      return fail("name length exceeds file size");
    }
    e.name.resize(name_len);
    in.read(e.name.data(), name_len);
    std::uint32_t ndim = 0;
    if (!read_pod(in, ndim) || ndim > kMaxNdim) return fail("bad rank");
    remaining = file_size - static_cast<std::int64_t>(in.tellg());
    if (static_cast<std::int64_t>(ndim) * 8 > remaining) {
      return fail("dims exceed file size");
    }
    std::vector<std::int64_t> dims(ndim);
    // The payload that could possibly follow bounds every dimension and
    // the element product (also an overflow guard: numel stays below
    // file_size, far under int64 range).
    const std::int64_t max_elems =
        (remaining - static_cast<std::int64_t>(ndim) * 8) /
        static_cast<std::int64_t>(sizeof(float));
    std::int64_t numel = 1;
    for (auto& d : dims) {
      if (!read_pod(in, d) || d < 0) return fail("bad dimension");
      if (d > 0 && numel > max_elems / d) {
        return fail("tensor size exceeds file size");
      }
      numel *= d;
    }
    std::uint32_t stored_crc = 0;
    if (has_crc && !read_pod(in, stored_crc)) return fail("truncated crc");
    remaining = file_size - static_cast<std::int64_t>(in.tellg());
    const std::int64_t payload =
        numel * static_cast<std::int64_t>(sizeof(float));
    if (payload > remaining) return fail("payload exceeds file size");

    Tensor value{Shape(dims)};
    in.read(reinterpret_cast<char*>(value.data()),
            static_cast<std::streamsize>(payload));
    if (!in.good()) return fail("truncated payload");
    if (has_crc &&
        crc32(value.data(), static_cast<std::size_t>(payload)) !=
            stored_crc) {
      return fail("checksum mismatch");
    }
    e.value = std::move(value);
    loaded.push_back(std::move(e));
  }
  entries = std::move(loaded);
  return true;
}

bool save_network(const std::string& path, Network& net) {
  std::vector<CheckpointEntry> entries;
  for (Parameter* p : net.parameters()) {
    entries.push_back(CheckpointEntry{p->name, p->value});
  }
  // Batch-norm running statistics live outside parameters() but are part
  // of the model: an eval-mode forward is wrong without them.
  for (auto& [name, tensor] : net.buffers()) {
    entries.push_back(CheckpointEntry{name, *tensor});
  }
  return save_entries(path, entries);
}

std::size_t load_network(const std::string& path, Network& net) {
  std::vector<CheckpointEntry> entries;
  if (!load_entries(path, entries)) return 0;

  auto restore = [&entries](const std::string& name,
                            Tensor& target) -> bool {
    for (const auto& e : entries) {
      if (e.name != name) continue;
      if (e.value.shape() != target.shape()) {
        SNNSKIP_LOG(Warn) << "checkpoint: shape mismatch for " << name
                          << " (file " << e.value.shape().str() << " vs "
                          << target.shape().str() << "), skipped";
        return false;
      }
      target = e.value;
      return true;
    }
    return false;
  };

  std::size_t restored = 0;
  auto params = net.parameters();
  for (Parameter* p : params) {
    if (restore(p->name, p->value)) ++restored;
  }
  std::size_t buffers_restored = 0;
  auto buffers = net.buffers();
  for (auto& [name, tensor] : buffers) {
    if (restore(name, *tensor)) ++buffers_restored;
  }
  if (restored != params.size() || buffers_restored != buffers.size()) {
    SNNSKIP_LOG(Warn) << "checkpoint: restored " << restored << "/"
                      << params.size() << " parameters and "
                      << buffers_restored << "/" << buffers.size()
                      << " buffers from " << path;
  }
  return restored;
}

}  // namespace snnskip
