#pragma once
// Dataset registry: the three synthetic benchmark tasks bundled into
// train/val/test triples, keyed by the paper's dataset names.

#include <string>
#include <vector>

#include "data/dataset.h"

namespace snnskip {

struct DatasetBundle {
  DatasetPtr train;
  DatasetPtr val;
  DatasetPtr test;
  std::string name;
  bool has_ann_reference = false;  ///< true only for static-image datasets
};

/// Dataset names accepted by make_datasets (the paper's three benchmarks).
std::vector<std::string> dataset_names();

/// Build a train/val/test bundle. Names: "cifar10", "cifar10-dvs",
/// "dvs128-gesture" (synthetic stand-ins per DESIGN.md §2).
DatasetBundle make_datasets(const std::string& name,
                            const SyntheticConfig& cfg);

}  // namespace snnskip
