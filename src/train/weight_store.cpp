#include "train/weight_store.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <unordered_set>

#include "nn/conv2d.h"

namespace snnskip {

namespace {
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<std::uint64_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}
}  // namespace

Tensor& WeightStore::get_or_init(const std::string& key, const Shape& shape) {
  auto it = store_.find(key);
  if (it != store_.end()) {
    assert(it->second.shape() == shape && "WeightStore: shape conflict");
    return it->second;
  }
  // Deterministic Kaiming-normal init keyed by (key, store seed).
  std::int64_t fan_in = 1;
  for (std::size_t d = 1; d < shape.ndim(); ++d) fan_in *= shape[d];
  const float stddev = std::sqrt(2.f / static_cast<float>(std::max<std::int64_t>(1, fan_in)));
  Rng rng(fnv1a(key) ^ seed_);
  auto [pos, inserted] =
      store_.emplace(key, Tensor::randn(shape, rng, 0.f, stddev));
  (void)inserted;
  return pos->second;
}

Tensor WeightStore::gather_in_dim1(const Tensor& full,
                                   const std::vector<std::int64_t>& idx) {
  const Shape& s = full.shape();
  assert(s.ndim() == 4);
  const std::int64_t o = s[0], i_full = s[1], k2 = s[2] * s[3];
  const std::int64_t i_sub = static_cast<std::int64_t>(idx.size());
  Tensor sub(Shape{o, i_sub, s[2], s[3]});
  for (std::int64_t oc = 0; oc < o; ++oc) {
    for (std::int64_t c = 0; c < i_sub; ++c) {
      const std::int64_t src_c = idx[static_cast<std::size_t>(c)];
      assert(src_c >= 0 && src_c < i_full);
      std::memcpy(sub.data() + (oc * i_sub + c) * k2,
                  full.data() + (oc * i_full + src_c) * k2,
                  sizeof(float) * static_cast<std::size_t>(k2));
    }
  }
  return sub;
}

void WeightStore::scatter_in_dim1(Tensor& full, const Tensor& sub,
                                  const std::vector<std::int64_t>& idx) {
  const Shape& fs = full.shape();
  const Shape& ss = sub.shape();
  assert(fs.ndim() == 4 && ss.ndim() == 4);
  assert(fs[0] == ss[0] && fs[2] == ss[2] && fs[3] == ss[3]);
  assert(ss[1] == static_cast<std::int64_t>(idx.size()));
  const std::int64_t o = fs[0], i_full = fs[1], i_sub = ss[1],
                     k2 = fs[2] * fs[3];
  for (std::int64_t oc = 0; oc < o; ++oc) {
    for (std::int64_t c = 0; c < i_sub; ++c) {
      const std::int64_t dst_c = idx[static_cast<std::size_t>(c)];
      assert(dst_c >= 0 && dst_c < i_full);
      std::memcpy(full.data() + (oc * i_full + dst_c) * k2,
                  sub.data() + (oc * i_sub + c) * k2,
                  sizeof(float) * static_cast<std::size_t>(k2));
    }
  }
}

void WeightStore::sync(Network& net, Dir dir) {
  std::unordered_set<const Parameter*> handled;

  // Block-node convolutions: gather/scatter against the supernet layout.
  for (Block* b : net.blocks()) {
    for (auto& node : b->nodes()) {
      auto* conv = dynamic_cast<Conv2d*>(node.op.get());
      if (conv == nullptr) continue;  // depthwise ops sync whole below
      Parameter& wp = conv->weight();
      const Shape full_shape{conv->out_channels(), node.supernet_in_c,
                             conv->kernel(), conv->kernel()};
      Tensor& full = get_or_init(wp.name, full_shape);
      if (dir == Dir::Load) {
        wp.value = gather_in_dim1(full, node.used_weight_channels);
      } else {
        scatter_in_dim1(full, wp.value, node.used_weight_channels);
      }
      handled.insert(&wp);
    }
  }

  // Everything else syncs at its natural shape. A key seen for the first
  // time adopts the candidate's freshly initialized value, so semantic
  // inits (batch-norm gamma = 1, biases = 0) survive.
  for (Parameter* p : net.parameters()) {
    if (handled.count(p) != 0) continue;
    auto it = store_.find(p->name);
    if (it == store_.end()) {
      store_.emplace(p->name, p->value);
      continue;
    }
    assert(it->second.shape() == p->value.shape() &&
           "WeightStore: parameter shape changed across candidates");
    if (dir == Dir::Load) {
      p->value = it->second;
    } else {
      it->second = p->value;
    }
  }
}

void WeightStore::load_into(Network& net) { sync(net, Dir::Load); }
void WeightStore::store_from(Network& net) { sync(net, Dir::Store); }

bool WeightStore::identical_to(const WeightStore& other) const {
  if (store_.size() != other.store_.size()) return false;
  for (const auto& [key, tensor] : store_) {
    auto it = other.store_.find(key);
    if (it == other.store_.end()) return false;
    if (it->second.shape() != tensor.shape()) return false;
    if (std::memcmp(it->second.data(), tensor.data(),
                    sizeof(float) *
                        static_cast<std::size_t>(tensor.numel())) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace snnskip
