#pragma once
// Structured training-progress observation (ISSUE 2 API redesign).
//
// The trainer used to expose exactly one progress surface: a `verbose`
// bool that printed to stderr. TrainObserver replaces it with hooks the
// fit() loop invokes at well-defined points, in this order:
//
//   on_train_begin(cfg)
//   for each epoch:  on_epoch_begin(e)
//                    on_batch_end(BatchStats) x num_batches
//                    on_epoch_end(EpochStats)
//   on_train_end(FitResult)
//
// Observers are non-owning raw pointers in TrainConfig::observers and must
// outlive the fit() call. Two stock implementations ship here:
// ProgressPrinter (the old stderr lines, byte-identical format) and
// TelemetryObserver (epoch/batch counters + instant trace markers for
// telemetry/telemetry.h). TrainConfig::verbose remains as a deprecated
// shim that installs a ProgressPrinter internally.

#include <cstdint>
#include <vector>

namespace snnskip {

struct TrainConfig;  // train/trainer.h

/// Per-epoch aggregates; the vector of these is the fit() history.
struct EpochStats {
  std::int64_t epoch = 0;
  double train_loss = 0.0;
  double train_acc = 0.0;
  double val_acc = 0.0;
};

struct FitResult {
  std::vector<EpochStats> epochs;
  double best_val_acc = 0.0;
  double final_val_acc = 0.0;
  /// True when the health monitor exhausted its rollback budget and the
  /// fit stopped early (train/health.h); the result is then untrusted.
  bool diverged = false;
  /// Rollbacks the health monitor performed during this fit.
  int health_retries = 0;
};

/// Per-batch progress payload for on_batch_end.
struct BatchStats {
  std::int64_t epoch = 0;
  std::int64_t batch = 0;       ///< index within the epoch
  std::int64_t batch_size = 0;  ///< samples in this batch
  double loss = 0.0;            ///< this batch's training loss
  double grad_norm = 0.0;       ///< pre-clip global gradient norm
};

class TrainObserver {
 public:
  virtual ~TrainObserver() = default;

  virtual void on_train_begin(const TrainConfig& cfg) { (void)cfg; }
  virtual void on_epoch_begin(std::int64_t epoch) { (void)epoch; }
  virtual void on_batch_end(const BatchStats& stats) { (void)stats; }
  virtual void on_epoch_end(const EpochStats& stats) { (void)stats; }
  virtual void on_train_end(const FitResult& result) { (void)result; }
};

/// The historical `verbose` output: one stderr log line per epoch.
class ProgressPrinter final : public TrainObserver {
 public:
  void on_epoch_end(const EpochStats& stats) override;
};

/// Bridges training progress into the telemetry subsystem: monotonic
/// counters (train.epochs, train.batches, train.samples), an arena
/// high-water counter, and an instant trace marker per epoch boundary.
/// All hooks are no-ops while telemetry is disabled.
class TelemetryObserver final : public TrainObserver {
 public:
  void on_epoch_begin(std::int64_t epoch) override;
  void on_batch_end(const BatchStats& stats) override;
  void on_epoch_end(const EpochStats& stats) override;
};

}  // namespace snnskip
