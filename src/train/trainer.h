#pragma once
// Training driver: surrogate-gradient BPTT for SNNs, plain backprop for the
// ANN twins (which are just the T == 1 special case).
//
// One optimization step over a batch:
//   reset state -> forward T timesteps (accumulating head logits)
//   -> cross-entropy on the time-averaged logits
//   -> backward T timesteps in reverse (each gets dL/dlogits / T)
//   -> clip -> optimizer step.

#include <functional>
#include <memory>
#include <vector>

#include "data/dataloader.h"
#include "graph/network.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "snn/encoders.h"
#include "train/health.h"
#include "train/observer.h"

namespace snnskip {

enum class OptKind { SgdMomentum, Adam };
enum class EncodingKind { Direct, Poisson, Latency, Event };

/// Readout / loss pairing:
///   MeanLogitCE — cross-entropy on time-averaged head logits (default;
///                 head outputs are analog logits);
///   CountMse    — spike-count MSE on summed head outputs (use with
///                 ModelConfig::spiking_head, snnTorch's mse_count_loss).
enum class LossKind { MeanLogitCE, CountMse };

/// Deterministic data-parallel execution (train/data_parallel.h).
///
/// Providing `replica_factory` opts a fit() into the sharded engine: each
/// minibatch is cut into a FIXED number of contiguous shards, every shard
/// runs forward+BPTT on its own model replica, and the per-shard gradients
/// (and batch-norm statistics) are combined with a fixed-shape binary tree
/// reduction. Because the decomposition and the reduction shape depend only
/// on (batch size, shards) — never on `workers` — the resulting gradients,
/// weights, and losses are bit-for-bit identical at 1, 2, 4, or 8 workers
/// (DESIGN.md §5f). `workers` only bounds how many shards run concurrently
/// on ThreadPool::global().
struct DataParallelConfig {
  /// Concurrent shard tasks; 0 reads SNNSKIP_WORKERS (unset => 1 = serial
  /// execution of the same sharded computation).
  std::int64_t workers = 0;
  /// Fixed shard decomposition; 0 selects the default (8, clamped to the
  /// batch size). 1 disables sharding (legacy whole-batch semantics).
  std::int64_t shards = 0;
  /// Builds a structurally identical Network (same architecture, any
  /// init — replicas are re-synced from the primary every batch). Null
  /// disables the engine entirely.
  std::function<Network()> replica_factory;
};

struct TrainConfig {
  std::int64_t epochs = 5;
  std::int64_t batch_size = 16;
  float lr = 0.01f;
  float momentum = 0.9f;
  OptKind opt = OptKind::SgdMomentum;
  float weight_decay = 0.f;
  /// Unroll length for static-image inputs (event data uses its own T).
  std::int64_t timesteps = 8;
  EncodingKind encoding = EncodingKind::Direct;
  LossKind loss = LossKind::MeanLogitCE;
  float grad_clip = 5.f;    ///< global-norm clip; <= 0 disables
  float lr_decay = 1.0f;    ///< multiplicative per-epoch decay
  std::uint64_t seed = 7;

  /// Progress hooks invoked by fit() (train/observer.h). Non-owning; the
  /// observers must outlive the fit() call.
  std::vector<TrainObserver*> observers{};

  /// Numeric health guard (train/health.h). Disabled by default; when
  /// enabled, fit() rolls back to the last-good snapshot on NaN/Inf or
  /// loss explosion, halves the LR, and gives up (FitResult::diverged)
  /// after health.max_retries rollbacks.
  HealthConfig health{};

  /// Deprecated shim: installs a ProgressPrinter for the duration of
  /// fit(), reproducing the historical per-epoch stderr line. Prefer
  /// adding a ProgressPrinter to `observers` explicitly.
  bool verbose = false;

  /// Deterministic data-parallel engine; inert unless
  /// data_parallel.replica_factory is set (see DataParallelConfig).
  DataParallelConfig data_parallel{};
};

struct EvalResult {
  double accuracy = 0.0;
  double loss = 0.0;
  double firing_rate = 0.0;  ///< 0 for analog networks
};

/// Encoder + unroll length appropriate for (dataset, network mode).
struct EncodingPlan {
  std::unique_ptr<Encoder> encoder;
  std::int64_t timesteps = 1;
};
EncodingPlan make_encoding_plan(const Dataset& ds, NeuronMode mode,
                                const TrainConfig& cfg);

/// Train `net` on `train`, tracking validation accuracy per epoch.
/// `val` may be null (no validation tracking).
FitResult fit(Network& net, NeuronMode mode, DatasetPtr train, DatasetPtr val,
              const TrainConfig& cfg);

/// Loss on the T-step accumulated head outputs plus the uniform
/// per-timestep gradient to feed BPTT with. Shared by train_batch, the
/// evaluation loop, and the data-parallel shard tasks.
struct StepLoss {
  LossResult result;
  Tensor grad_per_step;
};
StepLoss readout_loss(LossKind kind, const Tensor& output_sum,
                      const std::vector<std::int64_t>& targets,
                      std::int64_t timesteps);

/// One gradient step on a batch; returns the batch loss. Exposed for tests.
/// `grad_norm_out`, when non-null, receives the pre-clip global gradient
/// norm (the health monitor's divergence signal).
double train_batch(Network& net, Encoder& enc, const Batch& batch,
                   std::int64_t timesteps, Optimizer& opt, float grad_clip,
                   LossKind loss = LossKind::MeanLogitCE,
                   double* grad_norm_out = nullptr);

/// Evaluate on a dataset; attaches `recorder` to spiking neurons for the
/// duration when non-null (firing_rate is then populated).
EvalResult evaluate(Network& net, NeuronMode mode, const Dataset& ds,
                    const TrainConfig& cfg,
                    FiringRateRecorder* recorder = nullptr);

/// Global gradient-norm clipping; returns the pre-clip norm.
double clip_grad_norm(const std::vector<Parameter*>& params, float max_norm);

}  // namespace snnskip
