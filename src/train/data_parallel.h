#pragma once
// Deterministic data-parallel training engine (DESIGN.md §5f).
//
// A minibatch is cut into a FIXED number of contiguous sample shards; each
// shard runs the standard unrolled forward + BPTT on its own model replica
// (with its own split-stream encoder), and per-shard gradients / batch-norm
// buffers / losses are combined with a fixed-shape binary tree reduction.
//
// The determinism contract: the shard decomposition, the per-shard
// computation, and the reduction tree depend only on (batch size, shards)
// — never on how many workers execute them. The worker count merely bounds
// how many shard tasks run concurrently on ThreadPool::global(), so the
// result is bit-for-bit identical at 1, 2, 4, or 8 workers.
//
// Semantics relative to the legacy whole-batch step:
//   * gradients   — each shard computes grads of ITS mean loss; scaling by
//     w_s = n_s / N before the tree-add reproduces the whole-batch mean
//     decomposition  grad(L) = Σ_s w_s · grad(L_s).
//   * batch norm  — micro-batch semantics: each shard normalizes with its
//     own shard statistics (the standard multi-device BN behaviour), and
//     running buffers combine as the w_s-weighted tree sum.
//   * encoders    — stochastic encoders draw from per-shard split streams
//     (Encoder::clone_shard), a pure function of (seed, shard).
// shards == 1 delegates to the legacy train_batch (exact legacy numbers).

#include <cstdint>
#include <memory>
#include <vector>

#include "train/trainer.h"

namespace snnskip {

/// Default fixed shard decomposition when DataParallelConfig::shards == 0.
/// Eight shards keeps the tree reduction shape stable across every worker
/// count the acceptance tests exercise (1/2/4/8).
inline constexpr std::int64_t kDataParallelDefaultShards = 8;

class DataParallelEngine {
 public:
  /// Builds `shards` replicas via cfg.replica_factory and per-shard
  /// encoders via enc.clone_shard(). The engine disables itself (enabled()
  /// == false) when cfg.replica_factory is null, resolved shards <= 1, or
  /// the encoder cannot be sharded; a structurally mismatched replica
  /// (different parameter/buffer layout) throws.
  ///
  /// `primary` and `enc` are borrowed and must outlive the engine.
  DataParallelEngine(Network& primary, const DataParallelConfig& cfg,
                     Encoder& enc, std::int64_t timesteps, LossKind loss);

  bool enabled() const { return !replicas_.empty(); }
  std::int64_t shards() const { return shards_; }
  std::int64_t workers() const { return workers_; }

  /// One sharded optimization step; drop-in for snnskip::train_batch
  /// (same loss / grad-norm reporting, optimizer stepped once on the
  /// primary's tree-reduced gradients). Batches smaller than the shard
  /// count use min(shards, N) shards; N == 1 falls back to the legacy
  /// path. Must not be called when enabled() is false.
  double train_batch(const Batch& batch, Optimizer& opt, float grad_clip,
                     double* grad_norm_out = nullptr);

  /// Resolved configuration knobs (0 -> default / SNNSKIP_WORKERS).
  static std::int64_t resolve_shards(const DataParallelConfig& cfg);
  static std::int64_t resolve_workers(const DataParallelConfig& cfg);

  /// Contiguous ceil-div shard bounds: shard `s` of `shards` over [0, n).
  /// Exposed for tests — the decomposition IS the determinism contract.
  static std::pair<std::int64_t, std::int64_t> shard_range(std::int64_t n,
                                                           std::int64_t shards,
                                                           std::int64_t s);

 private:
  void run_shard(std::int64_t s, std::int64_t effective_shards,
                 const Batch& batch);

  Network* primary_;
  Encoder* base_encoder_;
  std::int64_t timesteps_;
  LossKind loss_;
  std::int64_t shards_ = 0;
  std::int64_t workers_ = 1;

  std::vector<Network> replicas_;                   // one per shard
  std::vector<std::unique_ptr<Encoder>> encoders_;  // one per shard
  std::vector<double> shard_loss_;                  // w_s-scaled, tree-added
};

}  // namespace snnskip
