// Tests for the tensor substrate: shapes, arithmetic, channel ops (the
// primitives behind DSC/ASC joins), GEMM against a naive reference, and the
// im2col/col2im adjoint property.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"
#include "tensor/spike_csr.h"
#include "tensor/spike_kernels.h"
#include "tensor/tensor.h"
#include "tensor/workspace.h"

namespace snnskip {
namespace {

TEST(Shape, NumelAndStrides) {
  Shape s{2, 3, 4, 5};
  EXPECT_EQ(s.numel(), 120);
  const auto strides = s.strides();
  ASSERT_EQ(strides.size(), 4u);
  EXPECT_EQ(strides[0], 60);
  EXPECT_EQ(strides[1], 20);
  EXPECT_EQ(strides[2], 5);
  EXPECT_EQ(strides[3], 1);
}

TEST(Shape, EmptyShapeIsScalar) {
  Shape s;
  EXPECT_EQ(s.numel(), 1);
  EXPECT_EQ(s.ndim(), 0u);
}

TEST(Shape, EqualityAndString) {
  EXPECT_EQ((Shape{1, 2}), (Shape{1, 2}));
  EXPECT_NE((Shape{1, 2}), (Shape{2, 1}));
  EXPECT_EQ((Shape{1, 2}).str(), "[1, 2]");
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{3, 3});
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(t[static_cast<std::size_t>(i)], 0.f);
  }
}

TEST(Tensor, FullAndFill) {
  Tensor t = Tensor::full(Shape{4}, 2.5f);
  EXPECT_FLOAT_EQ(t[0], 2.5f);
  t.fill(-1.f);
  EXPECT_FLOAT_EQ(t[3], -1.f);
}

TEST(Tensor, AtIndexing) {
  Tensor t(Shape{2, 3});
  t.at({1, 2}) = 7.f;
  EXPECT_FLOAT_EQ(t.at({1, 2}), 7.f);
  EXPECT_FLOAT_EQ(t[5], 7.f);  // row-major
}

TEST(Tensor, RandnStatistics) {
  Rng rng(5);
  Tensor t = Tensor::randn(Shape{10000}, rng, 1.f, 2.f);
  EXPECT_NEAR(t.mean(), 1.0, 0.1);
}

TEST(Tensor, RandBounds) {
  Rng rng(6);
  Tensor t = Tensor::rand(Shape{1000}, rng, -1.f, 1.f);
  EXPECT_GE(t.min_value(), -1.f);
  EXPECT_LT(t.max_value(), 1.f);
}

TEST(Tensor, BernoulliIsBinary) {
  Rng rng(8);
  Tensor t = Tensor::bernoulli(Shape{1000}, rng, 0.25f);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    const float v = t[static_cast<std::size_t>(i)];
    EXPECT_TRUE(v == 0.f || v == 1.f);
  }
  EXPECT_NEAR(t.nonzero_fraction(), 0.25, 0.05);
}

TEST(Tensor, Arithmetic) {
  Tensor a = Tensor::full(Shape{4}, 2.f);
  Tensor b = Tensor::full(Shape{4}, 3.f);
  a.add_(b);
  EXPECT_FLOAT_EQ(a[0], 5.f);
  a.sub_(b);
  EXPECT_FLOAT_EQ(a[0], 2.f);
  a.mul_(4.f);
  EXPECT_FLOAT_EQ(a[0], 8.f);
  a.axpy_(0.5f, b);
  EXPECT_FLOAT_EQ(a[0], 9.5f);
  a.hadamard_(b);
  EXPECT_FLOAT_EQ(a[0], 28.5f);
  a.clamp_(0.f, 10.f);
  EXPECT_FLOAT_EQ(a[0], 10.f);
}

TEST(Tensor, Reductions) {
  Tensor t(Shape{4}, std::vector<float>{1.f, -2.f, 3.f, 0.f});
  EXPECT_DOUBLE_EQ(t.sum(), 2.0);
  EXPECT_DOUBLE_EQ(t.mean(), 0.5);
  EXPECT_FLOAT_EQ(t.max_value(), 3.f);
  EXPECT_FLOAT_EQ(t.min_value(), -2.f);
  EXPECT_DOUBLE_EQ(t.nonzero_fraction(), 0.75);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(Shape{2, 3}, std::vector<float>{0, 1, 2, 3, 4, 5});
  Tensor r = t.reshape(Shape{3, 2});
  EXPECT_FLOAT_EQ(r.at({2, 1}), 5.f);
}

TEST(Tensor, MaxAbsDiff) {
  Tensor a(Shape{3}, std::vector<float>{1.f, 2.f, 3.f});
  Tensor b(Shape{3}, std::vector<float>{1.f, 2.5f, 3.f});
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(a, b), 0.5f);
}

// --- channel operations -------------------------------------------------

TEST(Ops, ConcatChannels) {
  Tensor a = Tensor::full(Shape{2, 2, 2, 2}, 1.f);
  Tensor b = Tensor::full(Shape{2, 3, 2, 2}, 2.f);
  Tensor c = concat_channels({&a, &b});
  EXPECT_EQ(c.shape(), (Shape{2, 5, 2, 2}));
  EXPECT_FLOAT_EQ(c.at({0, 0, 0, 0}), 1.f);
  EXPECT_FLOAT_EQ(c.at({0, 2, 0, 0}), 2.f);
  EXPECT_FLOAT_EQ(c.at({1, 4, 1, 1}), 2.f);
}

TEST(Ops, SliceChannelsInvertsConcat) {
  Rng rng(3);
  Tensor a = Tensor::randn(Shape{1, 2, 3, 3}, rng);
  Tensor b = Tensor::randn(Shape{1, 4, 3, 3}, rng);
  Tensor c = concat_channels({&a, &b});
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(slice_channels(c, 0, 2), a), 0.f);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(slice_channels(c, 2, 6), b), 0.f);
}

TEST(Ops, GatherChannelsSelects) {
  Tensor x(Shape{1, 4, 1, 1}, std::vector<float>{10, 11, 12, 13});
  Tensor g = gather_channels(x, {3, 1});
  EXPECT_EQ(g.shape(), (Shape{1, 2, 1, 1}));
  EXPECT_FLOAT_EQ(g[0], 13.f);
  EXPECT_FLOAT_EQ(g[1], 11.f);
}

TEST(Ops, ScatterAddIsAdjointOfGather) {
  // <gather(x), g> == <x, scatter(g)> for all x, g — the adjoint property
  // the Block backward relies on.
  Rng rng(4);
  Tensor x = Tensor::randn(Shape{2, 5, 3, 3}, rng);
  const std::vector<std::int64_t> idx{4, 0, 2};
  Tensor g = Tensor::randn(Shape{2, 3, 3, 3}, rng);

  Tensor gx = gather_channels(x, idx);
  double lhs = 0.0;
  for (std::int64_t i = 0; i < gx.numel(); ++i) {
    lhs += static_cast<double>(gx[static_cast<std::size_t>(i)]) *
           g[static_cast<std::size_t>(i)];
  }
  Tensor sg(Shape{2, 5, 3, 3});
  scatter_add_channels(sg, g, idx);
  double rhs = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x[static_cast<std::size_t>(i)]) *
           sg[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(lhs, rhs, 1e-4);
}

TEST(Ops, ScatterAddAccumulates) {
  Tensor acc = Tensor::full(Shape{1, 2, 1, 1}, 1.f);
  Tensor g = Tensor::full(Shape{1, 1, 1, 1}, 2.f);
  scatter_add_channels(acc, g, {1});
  EXPECT_FLOAT_EQ(acc[0], 1.f);
  EXPECT_FLOAT_EQ(acc[1], 3.f);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(9);
  Tensor logits = Tensor::randn(Shape{5, 7}, rng, 0.f, 3.f);
  Tensor p = softmax(logits);
  for (std::int64_t i = 0; i < 5; ++i) {
    double row = 0.0;
    for (std::int64_t j = 0; j < 7; ++j) row += p.at({i, j});
    EXPECT_NEAR(row, 1.0, 1e-5);
  }
  EXPECT_GE(p.min_value(), 0.f);
}

TEST(Ops, SoftmaxHandlesLargeLogits) {
  Tensor logits(Shape{1, 3}, std::vector<float>{1000.f, 1001.f, 999.f});
  Tensor p = softmax(logits);
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_GT(p[1], p[0]);
}

TEST(Ops, ArgmaxRows) {
  Tensor logits(Shape{2, 3}, std::vector<float>{1, 5, 2, 9, 0, 3});
  const auto idx = argmax_rows(logits);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(Ops, PadUnpadRoundTrip) {
  Rng rng(10);
  Tensor x = Tensor::randn(Shape{2, 3, 4, 4}, rng);
  Tensor p = pad2d(x, 2);
  EXPECT_EQ(p.shape(), (Shape{2, 3, 8, 8}));
  EXPECT_FLOAT_EQ(p.at({0, 0, 0, 0}), 0.f);  // border is zero
  Tensor u = unpad2d(p, 2);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(u, x), 0.f);
}

// --- GEMM ----------------------------------------------------------------

void naive_gemm(std::int64_t m, std::int64_t n, std::int64_t k,
                const float* a, const float* b, float* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.f;
      for (std::int64_t p = 0; p < k; ++p) acc += a[i * k + p] * b[p * n + j];
      c[i * n + j] = acc;
    }
  }
}

class GemmSizes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSizes, MatchesNaiveReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(100 + m + n + k);
  Tensor a = Tensor::randn(Shape{m, k}, rng);
  Tensor b = Tensor::randn(Shape{k, n}, rng);
  Tensor c(Shape{m, n});
  Tensor ref(Shape{m, n});
  gemm(m, n, k, 1.f, a.data(), b.data(), 0.f, c.data());
  naive_gemm(m, n, k, a.data(), b.data(), ref.data());
  EXPECT_LT(Tensor::max_abs_diff(c, ref), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GemmSizes,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(3, 5, 7),
                                           std::make_tuple(16, 16, 16),
                                           std::make_tuple(33, 17, 65),
                                           std::make_tuple(8, 200, 150),
                                           std::make_tuple(64, 1, 300)));

TEST(Gemm, AlphaBetaSemantics) {
  const std::int64_t m = 4, n = 4, k = 4;
  Rng rng(11);
  Tensor a = Tensor::randn(Shape{m, k}, rng);
  Tensor b = Tensor::randn(Shape{k, n}, rng);
  Tensor c = Tensor::full(Shape{m, n}, 1.f);
  Tensor ab(Shape{m, n});
  naive_gemm(m, n, k, a.data(), b.data(), ab.data());
  gemm(m, n, k, 2.f, a.data(), b.data(), 3.f, c.data());
  for (std::int64_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(c[static_cast<std::size_t>(i)],
                2.f * ab[static_cast<std::size_t>(i)] + 3.f, 1e-3f);
  }
}

TEST(Gemm, TransposedAMatchesNaive) {
  const std::int64_t m = 6, n = 9, k = 5;
  Rng rng(12);
  Tensor at = Tensor::randn(Shape{k, m}, rng);  // A stored transposed
  Tensor b = Tensor::randn(Shape{k, n}, rng);
  Tensor c(Shape{m, n});
  gemm_tn(m, n, k, 1.f, at.data(), b.data(), 0.f, c.data());
  // Build the untransposed A and compare.
  Tensor a(Shape{m, k});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t p = 0; p < k; ++p) a.at({i, p}) = at.at({p, i});
  }
  Tensor ref(Shape{m, n});
  naive_gemm(m, n, k, a.data(), b.data(), ref.data());
  EXPECT_LT(Tensor::max_abs_diff(c, ref), 1e-4f);
}

TEST(Gemm, TransposedBMatchesNaive) {
  const std::int64_t m = 7, n = 4, k = 8;
  Rng rng(13);
  Tensor a = Tensor::randn(Shape{m, k}, rng);
  Tensor bt = Tensor::randn(Shape{n, k}, rng);  // B stored transposed
  Tensor c(Shape{m, n});
  gemm_nt(m, n, k, 1.f, a.data(), bt.data(), 0.f, c.data());
  Tensor b(Shape{k, n});
  for (std::int64_t p = 0; p < k; ++p) {
    for (std::int64_t j = 0; j < n; ++j) b.at({p, j}) = bt.at({j, p});
  }
  Tensor ref(Shape{m, n});
  naive_gemm(m, n, k, a.data(), b.data(), ref.data());
  EXPECT_LT(Tensor::max_abs_diff(c, ref), 1e-4f);
}

TEST(Gemm, AccumulatesWithBetaOne) {
  const std::int64_t m = 3, n = 3, k = 3;
  Rng rng(14);
  Tensor a = Tensor::randn(Shape{m, k}, rng);
  Tensor b = Tensor::randn(Shape{k, n}, rng);
  Tensor c1(Shape{m, n});
  gemm(m, n, k, 1.f, a.data(), b.data(), 0.f, c1.data());
  Tensor c2(Shape{m, n});
  gemm(m, n, k, 1.f, a.data(), b.data(), 0.f, c2.data());
  gemm(m, n, k, 1.f, a.data(), b.data(), 1.f, c2.data());
  for (std::int64_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(c2[static_cast<std::size_t>(i)],
                2.f * c1[static_cast<std::size_t>(i)], 1e-4f);
  }
}

// --- im2col --------------------------------------------------------------

class Im2ColGeom : public ::testing::TestWithParam<ConvGeometry> {};

TEST_P(Im2ColGeom, AdjointProperty) {
  // <im2col(x), c> == <x, col2im(c)>.
  const ConvGeometry g = GetParam();
  Rng rng(21);
  Tensor x = Tensor::randn(Shape{g.in_c, g.in_h, g.in_w}, rng);
  Tensor cols(Shape{g.col_rows(), g.col_cols()});
  im2col(g, x.data(), cols.data());

  Tensor c = Tensor::randn(Shape{g.col_rows(), g.col_cols()}, rng);
  double lhs = 0.0;
  for (std::int64_t i = 0; i < cols.numel(); ++i) {
    lhs += static_cast<double>(cols[static_cast<std::size_t>(i)]) *
           c[static_cast<std::size_t>(i)];
  }
  Tensor back(Shape{g.in_c, g.in_h, g.in_w});
  col2im(g, c.data(), back.data());
  double rhs = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x[static_cast<std::size_t>(i)]) *
           back[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2ColGeom,
    ::testing::Values(ConvGeometry{1, 4, 4, 3, 1, 1},
                      ConvGeometry{3, 8, 8, 3, 1, 1},
                      ConvGeometry{2, 8, 8, 3, 2, 1},
                      ConvGeometry{4, 6, 6, 1, 1, 0},
                      ConvGeometry{2, 5, 7, 3, 2, 1},
                      ConvGeometry{1, 4, 4, 4, 2, 0}));

TEST(Im2Col, IdentityKernelCopiesPixels) {
  // 1x1 kernel, stride 1, no padding: cols == image.
  const ConvGeometry g{2, 3, 3, 1, 1, 0};
  Rng rng(22);
  Tensor x = Tensor::randn(Shape{2, 3, 3}, rng);
  Tensor cols(Shape{g.col_rows(), g.col_cols()});
  im2col(g, x.data(), cols.data());
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(cols.reshape(x.shape()), x), 0.f);
}

TEST(Im2Col, PaddingProducesZeros) {
  const ConvGeometry g{1, 2, 2, 3, 1, 1};
  Tensor x = Tensor::full(Shape{1, 2, 2}, 5.f);
  Tensor cols(Shape{g.col_rows(), g.col_cols()});
  im2col(g, x.data(), cols.data());
  // Top-left output position, top-left kernel tap reads padding.
  EXPECT_FLOAT_EQ(cols.at({0, 0}), 0.f);
}

TEST(ConvGeometry, OutputSizes) {
  const ConvGeometry g{3, 16, 16, 3, 2, 1};
  EXPECT_EQ(g.out_h(), 8);
  EXPECT_EQ(g.out_w(), 8);
  EXPECT_EQ(g.col_rows(), 27);
  EXPECT_EQ(g.col_cols(), 64);
}

TEST(Workspace, StackedScopesReleaseInOrder) {
  Workspace ws;
  {
    auto outer = ws.scope();
    float* a = outer.floats(100);
    ASSERT_NE(a, nullptr);
    a[0] = 1.f;
    {
      auto inner = ws.scope();
      float* b = inner.zeroed_floats(50);
      EXPECT_EQ(b[49], 0.f);
      // Outer pointer stays valid while the inner scope is live.
      a[99] = 2.f;
    }
    EXPECT_FLOAT_EQ(a[0], 1.f);
    EXPECT_FLOAT_EQ(a[99], 2.f);
  }
  EXPECT_GE(ws.high_water(), 150u);
}

TEST(Workspace, SteadyStateStopsAllocating) {
  Workspace ws;
  auto iteration = [&ws] {
    auto scope = ws.scope();
    (void)scope.floats(1000);
    (void)scope.floats(3000);
  };
  iteration();  // first pass grows the arena
  iteration();  // possible coalesce
  const std::size_t allocs = ws.heap_allocs();
  const std::size_t hw = ws.high_water();
  for (int i = 0; i < 10; ++i) iteration();
  EXPECT_EQ(ws.heap_allocs(), allocs);  // zero heap traffic in steady state
  EXPECT_EQ(ws.high_water(), hw);
}

TEST(Workspace, GrowthPreservesEarlierPointers) {
  Workspace ws;
  auto scope = ws.scope();
  float* a = scope.floats(10);
  a[0] = 42.f;
  // Force a new block well past the first one's capacity.
  float* b = scope.floats(1 << 20);
  b[0] = 1.f;
  EXPECT_FLOAT_EQ(a[0], 42.f);
}

TEST(SpikeCsr, PacksRowEvents) {
  // 2 rows x 5 cols with known nonzeros.
  const float data[10] = {0.f, 1.f, 0.f, 1.f, 0.f, 0.f, 0.f, 0.f, 0.f, 1.f};
  SpikeCsr csr;
  csr.build(data, 2, 5);
  EXPECT_EQ(csr.rows(), 2);
  EXPECT_EQ(csr.nnz(), 3);
  EXPECT_TRUE(csr.binary());
  EXPECT_DOUBLE_EQ(csr.density(), 0.3);
  ASSERT_EQ(csr.row_nnz(0), 2);
  EXPECT_EQ(csr.row_indices(0)[0], 1);
  EXPECT_EQ(csr.row_indices(0)[1], 3);
  ASSERT_EQ(csr.row_nnz(1), 1);
  EXPECT_EQ(csr.row_indices(1)[0], 4);
}

TEST(SpikeCsr, NonBinaryValuesAreKept) {
  const float data[4] = {0.f, 2.5f, 0.f, 1.f};
  SpikeCsr csr;
  csr.build(data, 1, 4);
  EXPECT_FALSE(csr.binary());
  ASSERT_EQ(csr.row_nnz(0), 2);
  EXPECT_FLOAT_EQ(csr.row_values(0)[0], 2.5f);
  EXPECT_FLOAT_EQ(csr.row_values(0)[1], 1.f);
}

TEST(SpikeCsr, EmptyAndFullDensityExtremes) {
  Tensor zeros(Shape{4, 8});
  SpikeCsr csr;
  csr.build(zeros.data(), 4, 8);
  EXPECT_EQ(csr.nnz(), 0);
  EXPECT_DOUBLE_EQ(csr.density(), 0.0);

  Tensor ones = Tensor::full(Shape{4, 8}, 1.f);
  csr.build(ones.data(), 4, 8);
  EXPECT_EQ(csr.nnz(), 32);
  EXPECT_DOUBLE_EQ(csr.density(), 1.0);
  EXPECT_TRUE(csr.binary());
}

TEST(SparseExec, CountNonzeroAndToggle) {
  const float data[6] = {0.f, 1.f, 0.f, 0.f, 3.f, 0.f};
  EXPECT_EQ(count_nonzero(data, 6), 2);

  const bool was = SparseExec::enabled();
  SparseExec::set_enabled(false);
  EXPECT_FALSE(SparseExec::enabled());
  SparseExec::set_enabled(was);
  EXPECT_GT(SparseExec::threshold(), 0.f);
  EXPECT_LE(SparseExec::threshold(), 1.f);
}

// Dense reference conv via im2col + gemm, for the event-driven kernel.
Tensor reference_conv(const ConvGeometry& g, const Tensor& x,
                      const Tensor& w, std::int64_t out_c) {
  const std::int64_t n = x.shape()[0];
  const std::int64_t cr = g.col_rows(), cc = g.col_cols();
  Tensor out(Shape{n, out_c, g.out_h(), g.out_w()});
  Tensor cols(Shape{cr, cc});
  for (std::int64_t img = 0; img < n; ++img) {
    im2col(g, x.data() + img * g.in_c * g.in_h * g.in_w, cols.data());
    gemm(out_c, cc, cr, 1.f, w.data(), cols.data(), 0.f,
         out.data() + img * out_c * cc);
  }
  return out;
}

class SpikeConvDensity : public ::testing::TestWithParam<double> {};

TEST_P(SpikeConvDensity, MatchesIm2colGemm) {
  const double density = GetParam();
  Rng rng(777);
  const ConvGeometry g{6, 9, 9, 3, 1, 1};
  const std::int64_t out_c = 5;
  Tensor x = Tensor::bernoulli(Shape{2, 6, 9, 9}, rng,
                               static_cast<float>(density));
  Tensor w = Tensor::randn(Shape{out_c, 6, 3, 3}, rng);

  SpikeCsr csr;
  csr.build(x.data(), 2, 6 * 9 * 9);
  Tensor got(Shape{2, out_c, g.out_h(), g.out_w()});
  spike_conv2d_forward(g, csr, w.data(), nullptr, out_c, got.data(),
                       Workspace::tls());
  Tensor ref = reference_conv(g, x, w, out_c);
  EXPECT_LT(Tensor::max_abs_diff(got, ref), 1e-5f);
}

TEST_P(SpikeConvDensity, StridedMatchesIm2colGemm) {
  const double density = GetParam();
  Rng rng(778);
  const ConvGeometry g{4, 8, 8, 3, 2, 1};
  const std::int64_t out_c = 7;
  Tensor x = Tensor::bernoulli(Shape{1, 4, 8, 8}, rng,
                               static_cast<float>(density));
  Tensor w = Tensor::randn(Shape{out_c, 4, 3, 3}, rng);

  SpikeCsr csr;
  csr.build(x.data(), 1, 4 * 8 * 8);
  Tensor got(Shape{1, out_c, g.out_h(), g.out_w()});
  spike_conv2d_forward(g, csr, w.data(), nullptr, out_c, got.data(),
                       Workspace::tls());
  Tensor ref = reference_conv(g, x, w, out_c);
  EXPECT_LT(Tensor::max_abs_diff(got, ref), 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(DensitySweep, SpikeConvDensity,
                         ::testing::Values(0.0, 0.05, 0.5, 1.0));

}  // namespace
}  // namespace snnskip
