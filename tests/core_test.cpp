// Tests for the core pipeline: search-space construction per model family,
// constraint handling, and candidate evaluation with weight sharing.

#include <gtest/gtest.h>

#include <cmath>

#include "core/adapter.h"
#include "core/evaluator.h"
#include "core/search_space.h"
#include "models/zoo.h"
#include "train/evaluate.h"

namespace snnskip {
namespace {

ModelConfig tiny_model() {
  ModelConfig cfg;
  cfg.in_channels = 2;
  cfg.num_classes = 10;
  cfg.max_timesteps = 4;
  cfg.width = 4;
  cfg.seed = 2;
  return cfg;
}

SyntheticConfig tiny_data() {
  SyntheticConfig cfg;
  cfg.height = 8;
  cfg.width = 8;
  cfg.timesteps = 4;
  cfg.train_size = 30;
  cfg.val_size = 20;
  cfg.test_size = 20;
  cfg.seed = 21;
  return cfg;
}

TrainConfig fast_train(std::int64_t epochs) {
  TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 10;
  cfg.lr = 0.05f;
  cfg.timesteps = 4;
  cfg.seed = 3;
  return cfg;
}

TEST(SearchSpace, SlotCountsPerFamily) {
  const ModelConfig cfg = tiny_model();
  EXPECT_EQ(SearchSpace(single_block_specs(cfg)).num_slots(), 6u);
  EXPECT_EQ(SearchSpace(resnet18s_specs(cfg)).num_slots(), 8u);   // 8 blocks x 1
  EXPECT_EQ(SearchSpace(densenet121s_specs(cfg)).num_slots(),
            3u + 6u + 6u + 3u);
  EXPECT_EQ(SearchSpace(mobilenetv2s_specs(cfg)).num_slots(), 15u);  // 5 x 3
}

TEST(SearchSpace, MobilenetDepthwiseSlotForbidsDsc) {
  const SearchSpace space(mobilenetv2s_specs(tiny_model()));
  // Slot layout per block: (0,2), (0,3), (1,3). Node 2 is depthwise.
  bool found_restricted = false;
  for (std::size_t k = 0; k < space.num_slots(); ++k) {
    const auto& slot = space.slots()[k];
    if (slot.dst == 2) {
      EXPECT_FALSE(space.value_allowed(k, 1));  // no DSC
      EXPECT_TRUE(space.value_allowed(k, 2));   // ASC fine
      EXPECT_TRUE(space.value_allowed(k, 0));
      found_restricted = true;
    }
  }
  EXPECT_TRUE(found_restricted);
}

TEST(SearchSpace, SamplesAreValid) {
  const SearchSpace space(mobilenetv2s_specs(tiny_model()));
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(space.valid(space.sample(rng)));
  }
}

TEST(SearchSpace, MutateChangesExactlyOneSlot) {
  const SearchSpace space(resnet18s_specs(tiny_model()));
  Rng rng(5);
  const EncodingVec base = space.sample(rng);
  for (int i = 0; i < 20; ++i) {
    const EncodingVec m = space.mutate(base, rng);
    EXPECT_TRUE(space.valid(m));
    EXPECT_EQ(hamming_distance(base, m), 1);
  }
}

TEST(SearchSpace, DecodeEncodeRoundTrip) {
  const SearchSpace space(densenet121s_specs(tiny_model()));
  Rng rng(6);
  const EncodingVec code = space.sample(rng);
  EXPECT_EQ(space.encode(space.decode(code)), code);
}

TEST(SearchSpace, DecodeRejectsBadEncodings) {
  const SearchSpace space(resnet18s_specs(tiny_model()));
  EXPECT_THROW(space.decode({1}), std::invalid_argument);
  const SearchSpace mb(mobilenetv2s_specs(tiny_model()));
  EncodingVec bad(mb.num_slots(), 0);
  bad[0] = 1;  // slot (0,2) of block ir0: DSC into depthwise
  EXPECT_THROW(mb.decode(bad), std::invalid_argument);
}

TEST(SearchSpace, Log10SizeMatchesExhaustiveCount) {
  // resnet18s: 8 unconstrained ternary slots -> 3^8.
  const SearchSpace space(resnet18s_specs(tiny_model()));
  EXPECT_NEAR(space.log10_size(), 8.0 * std::log10(3.0), 1e-9);
  // mobilenetv2s: 5 blocks x (2 free slots x3 + 1 restricted x2).
  const SearchSpace mb(mobilenetv2s_specs(tiny_model()));
  EXPECT_NEAR(mb.log10_size(),
              5.0 * (2.0 * std::log10(3.0) + std::log10(2.0)), 1e-9);
}

TEST(SearchSpace, DefaultAdjacenciesEncodeCleanly) {
  const ModelConfig cfg = tiny_model();
  for (const auto& name : model_names()) {
    const SearchSpace space(model_block_specs(name, cfg));
    const auto code = space.encode(default_adjacencies(name, cfg));
    EXPECT_TRUE(space.valid(code)) << name;
  }
}

// --- candidate evaluator -----------------------------------------------------

CandidateEvaluator make_tiny_evaluator(const std::string& model = "single_block") {
  EvaluatorConfig cfg;
  cfg.model = model;
  cfg.model_cfg = tiny_model();
  cfg.finetune = fast_train(1);
  cfg.scratch = fast_train(2);
  cfg.seed = 7;
  return CandidateEvaluator(cfg, make_datasets("cifar10-dvs", tiny_data()));
}

TEST(CandidateEvaluator, BuildsCandidates) {
  CandidateEvaluator ev = make_tiny_evaluator();
  Rng rng(8);
  const EncodingVec code = ev.space().sample(rng);
  Network net = ev.build(code);
  Tensor x = Tensor::randn(Shape{1, 2, 8, 8}, rng);
  EXPECT_EQ(net.forward(x, false).shape(), (Shape{1, 10}));
}

TEST(CandidateEvaluator, ModelConfigAdjustedToDataset) {
  CandidateEvaluator ev = make_tiny_evaluator();
  EXPECT_EQ(ev.model_config().in_channels, 2);
  EXPECT_EQ(ev.model_config().num_classes, 10);
  EXPECT_EQ(ev.model_config().max_timesteps, 4);
}

TEST(CandidateEvaluator, DscCandidateHasMoreMacs) {
  CandidateEvaluator ev = make_tiny_evaluator();
  const EncodingVec chain(ev.space().num_slots(), 0);
  EncodingVec dsc = chain;
  dsc[0] = 1;
  EXPECT_GT(ev.candidate_macs(dsc), ev.candidate_macs(chain));
}

TEST(CandidateEvaluator, SharedEvaluationRunsAndCounts) {
  CandidateEvaluator ev = make_tiny_evaluator();
  Rng rng(9);
  const EncodingVec code = ev.space().sample(rng);
  const CandidateResult res = ev.evaluate_shared(code);
  EXPECT_GE(res.val_accuracy, 0.0);
  EXPECT_LE(res.val_accuracy, 1.0);
  EXPECT_GT(res.macs, 0);
  EXPECT_EQ(ev.evaluations(), 1u);
  // No ANN reference: objective is negated accuracy.
  EXPECT_DOUBLE_EQ(res.objective, -res.val_accuracy);
}

TEST(CandidateEvaluator, ObjectiveUsesAnnReferenceWhenSet) {
  CandidateEvaluator ev = make_tiny_evaluator();
  ev.set_ann_reference(0.9);
  Rng rng(10);
  const CandidateResult res = ev.evaluate_shared(ev.space().sample(rng));
  EXPECT_NEAR(res.objective, 0.9 - res.val_accuracy, 1e-12);
}

TEST(CandidateEvaluator, WeightSharingPersistsAcrossCandidates) {
  CandidateEvaluator ev = make_tiny_evaluator();
  const EncodingVec chain(ev.space().num_slots(), 0);
  ev.evaluate_shared(chain);
  const std::size_t stored = ev.store().size();
  EXPECT_GT(stored, 0u);
  EncodingVec other = chain;
  other[0] = 2;  // flip one slot to ASC
  ev.evaluate_shared(other);
  // Same layer keys (plus possibly a projection) — the store grows only by
  // new keys, shared ones are reused.
  EXPECT_GE(ev.store().size(), stored);
}

TEST(Adapter, BoProblemWiresEvaluator) {
  CandidateEvaluator ev = make_tiny_evaluator();
  const BoProblem problem = make_bo_problem(ev);
  Rng rng(11);
  const EncodingVec code = problem.sample(rng);
  EXPECT_TRUE(ev.space().valid(code));
  EXPECT_EQ(problem.featurize(code).size(), code.size() * 3);
  const double v = problem.objective(code);
  EXPECT_LE(v, 0.0);  // negated accuracy
  EXPECT_EQ(ev.evaluations(), 1u);
}

}  // namespace
}  // namespace snnskip
