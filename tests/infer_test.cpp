// Tests for the compiled inference engine (ISSUE 6): BN-fold numerical
// equivalence, packed-vs-CSR-vs-dense forward equivalence across join
// types and geometries, plan buffer-reuse safety, zero-allocation steady
// state, checkpoint round-trips, and dispatch/energy accounting.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "graph/adjacency.h"
#include "graph/block.h"
#include "infer/compile.h"
#include "infer/engine.h"
#include "infer/quant.h"
#include "models/zoo.h"
#include "tensor/spike_csr.h"
#include "tensor/spike_kernels.h"
#include "tensor/spike_packed.h"
#include "tensor/workspace.h"
#include "train/checkpoint.h"
#include "util/rng.h"

namespace snnskip {
namespace {

using infer::CompileOptions;
using infer::Engine;
using infer::ExecOptions;
using infer::InferExec;
using infer::Plan;

// Saves and restores the process-wide dispatch DEFAULTS around each test
// (SparseExec globals for the training graph, InferExec shims for
// default-constructed engines) so forced configurations never leak into
// other suites. Engines under test pass explicit ExecOptions instead.
class InferTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sparse_on_ = SparseExec::enabled();
    sparse_thr_ = SparseExec::threshold();
    packed_on_ = InferExec::packed_enabled();
    packed_thr_ = InferExec::threshold();
  }
  void TearDown() override {
    SparseExec::set_enabled(sparse_on_);
    SparseExec::set_threshold(sparse_thr_);
    InferExec::set_packed_enabled(packed_on_);
    InferExec::set_threshold(packed_thr_);
  }

 private:
  bool sparse_on_ = true, packed_on_ = true;
  float sparse_thr_ = 0.25f, packed_thr_ = 0.25f;
};

ModelConfig small_cfg() {
  ModelConfig cfg;
  cfg.width = 8;
  cfg.in_channels = 2;
  cfg.num_classes = 10;
  cfg.max_timesteps = 10;
  cfg.seed = 7;
  return cfg;
}

std::vector<Tensor> spike_inputs(const Shape& s, std::int64_t steps, float p,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> xs;
  for (std::int64_t t = 0; t < steps; ++t) {
    xs.push_back(Tensor::bernoulli(s, rng, p));
  }
  return xs;
}

/// Run a few train-mode steps so BNTT accumulates non-trivial per-timestep
/// running stats (otherwise folding is a near-identity and proves little),
/// then clear all contexts/state for the eval comparison.
void warm_bn_stats(Network& net, const Shape& in_shape, std::int64_t steps) {
  Rng rng(99);
  net.reset_state();
  for (std::int64_t t = 0; t < steps; ++t) {
    net.forward(Tensor::bernoulli(in_shape, rng, 0.3f), /*train=*/true);
  }
  net.reset_state();
}

std::vector<Tensor> training_eval(Network& net,
                                  const std::vector<Tensor>& xs) {
  net.reset_state();
  std::vector<Tensor> outs;
  for (const Tensor& x : xs) outs.push_back(net.forward(x, false));
  return outs;
}

std::vector<Tensor> engine_eval(Engine& eng, const std::vector<Tensor>& xs) {
  eng.reset();
  std::vector<Tensor> outs;
  for (const Tensor& x : xs) outs.push_back(eng.step(x));
  return outs;
}

float max_step_diff(const std::vector<Tensor>& a,
                    const std::vector<Tensor>& b) {
  EXPECT_EQ(a.size(), b.size());
  float worst = 0.f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, Tensor::max_abs_diff(a[i], b[i]));
  }
  return worst;
}

// --- packed kernels ---------------------------------------------------------

TEST_F(InferTest, SpikePackRoundTripAndPopcount) {
  Rng rng(3);
  const std::int64_t n = 130;  // exercises a partial tail word
  Tensor x = Tensor::bernoulli(Shape{n}, rng, 0.4f);
  std::vector<std::uint64_t> words(
      static_cast<std::size_t>(packed_words(n)), ~std::uint64_t{0});
  const std::int64_t nnz = spike_pack(x.data(), n, words.data());
  ASSERT_GE(nnz, 0);
  EXPECT_EQ(nnz, count_nonzero(x.data(), n));
  EXPECT_EQ(popcount_words(words.data(), packed_words(n)), nnz);
  for (std::int64_t i = 0; i < n; ++i) {
    const bool bit = (words[static_cast<std::size_t>(i >> 6)] >>
                      (i & 63)) & 1u;
    EXPECT_EQ(bit, x.data()[i] != 0.f) << "bit " << i;
  }

  x.data()[5] = 0.5f;  // non-binary input must be rejected
  EXPECT_EQ(spike_pack(x.data(), n, words.data()), -1);
}

TEST_F(InferTest, PackedConvTermMatchesCsrKernelBitwise) {
  // Single-term layer: the packed walk visits events in SpikeCsr order and
  // accumulates identical weight rows, so agreement must be exact.
  Rng rng(11);
  const ConvGeometry g{6, 9, 7, 3, 2, 1};
  const std::int64_t o_c = 5;
  const std::int64_t in_n = g.in_c * g.in_h * g.in_w;
  const std::int64_t p = g.out_h() * g.out_w();
  Tensor x = Tensor::bernoulli(Shape{1, g.in_c, g.in_h, g.in_w}, rng, 0.2f);
  Tensor w = Tensor::randn(Shape{o_c, g.in_c, g.kernel, g.kernel}, rng);

  SpikeCsr csr;
  csr.build(x.data(), 1, in_n);
  std::vector<float> ref(static_cast<std::size_t>(o_c * p), 0.f);
  spike_conv2d_forward(g, csr, w.data(), nullptr, o_c, ref.data(),
                       Workspace::tls());

  std::vector<std::uint64_t> words(
      static_cast<std::size_t>(packed_words(in_n)));
  ASSERT_GE(spike_pack(x.data(), in_n, words.data()), 0);
  const std::int64_t ckk = g.col_rows();
  std::vector<float> wt(static_cast<std::size_t>(ckk * o_c));
  for (std::int64_t o = 0; o < o_c; ++o) {
    for (std::int64_t r = 0; r < ckk; ++r) {
      wt[static_cast<std::size_t>(r * o_c + o)] =
          w.data()[o * ckk + r];
    }
  }
  std::vector<float> panel(static_cast<std::size_t>(p * o_c), 0.f);
  const std::int64_t synops = spike_packed_conv2d_term(
      g, g.in_c, words.data(), nullptr, wt.data(), o_c, panel.data());
  EXPECT_GT(synops, 0);
  for (std::int64_t o = 0; o < o_c; ++o) {
    for (std::int64_t j = 0; j < p; ++j) {
      EXPECT_EQ(panel[static_cast<std::size_t>(j * o_c + o)],
                ref[static_cast<std::size_t>(o * p + j)])
          << "o=" << o << " j=" << j;
    }
  }
}

// --- BN folding / training equivalence --------------------------------------

TEST_F(InferTest, FoldedPlanMatchesTrainingEval) {
  // BN scale folded into the weights reassociates per-tap products; the
  // membrane difference is bounded (documented in DESIGN.md §5g), checked
  // here through the head logits at 1e-4.
  for (const std::string model : {"single_block", "resnet18s"}) {
    ModelConfig cfg = small_cfg();
    Network net = build_model(model, cfg, default_adjacencies(model, cfg));
    const Shape in{2, cfg.in_channels, 8, 8};
    warm_bn_stats(net, in, 4);
    const auto xs = spike_inputs(in, 4, 0.25f, 21);
    const auto ref = training_eval(net, xs);

    Engine eng(infer::compile(net, in));
    const auto got = engine_eval(eng, xs);
    EXPECT_LE(max_step_diff(ref, got), 1e-4f) << model;
  }
}

TEST_F(InferTest, FoldedPlanMatchesTrainingEvalPlif) {
  ModelConfig cfg = small_cfg();
  cfg.neuron = NeuronKind::Plif;
  Network net =
      build_model("resnet18s", cfg, default_adjacencies("resnet18s", cfg));
  const Shape in{2, cfg.in_channels, 8, 8};
  warm_bn_stats(net, in, 4);
  const auto xs = spike_inputs(in, 4, 0.25f, 23);
  const auto ref = training_eval(net, xs);

  Engine eng(infer::compile(net, in));
  const auto got = engine_eval(eng, xs);
  EXPECT_LE(max_step_diff(ref, got), 1e-4f);
}

TEST_F(InferTest, NoFoldDensePlanIsBitwiseEqualToTraining) {
  // fold_bn = false keeps the training layout: the engine's dense path
  // runs the identical im2col + GEMM, BN-eval expressions, and LIF update,
  // so with both sides forced dense the outputs must agree exactly.
  SparseExec::set_enabled(false);  // training-graph side stays dense
  for (const std::string model :
       {"single_block", "resnet18s", "densenet121s", "mobilenetv2s"}) {
    ModelConfig cfg = small_cfg();
    Network net = build_model(model, cfg, default_adjacencies(model, cfg));
    const Shape in{2, cfg.in_channels, 8, 8};
    warm_bn_stats(net, in, 4);
    const auto xs = spike_inputs(in, 4, 0.25f, 31);
    const auto ref = training_eval(net, xs);

    CompileOptions opts;
    opts.fold_bn = false;
    Engine eng(infer::compile(net, in, opts),
               ExecOptions{/*packed=*/false, /*threshold=*/0.f});
    const auto got = engine_eval(eng, xs);
    EXPECT_EQ(max_step_diff(ref, got), 0.f) << model;
    EXPECT_GT(eng.stats().dense_dispatches, 0);
  }
}

// --- packed vs CSR vs dense -------------------------------------------------

TEST_F(InferTest, PackedMatchesCsrBitwiseOnChain) {
  // Single-term ops (chain adjacency): packed and CSR visit the same
  // events in the same order — exact agreement required.
  ModelConfig cfg = small_cfg();
  Network net = build_model("single_block", cfg,
                            {Adjacency::chain(4)});
  const Shape in{2, cfg.in_channels, 8, 8};
  warm_bn_stats(net, in, 4);
  const auto xs = spike_inputs(in, 4, 0.15f, 41);
  const infer::PlanPtr plan = infer::compile(net, in);

  Engine packed_eng(plan, ExecOptions{/*packed=*/true, /*threshold=*/1.f});
  const auto packed = engine_eval(packed_eng, xs);
  EXPECT_GT(packed_eng.stats().packed_dispatches, 0);

  Engine csr_eng(plan, ExecOptions{/*packed=*/false, /*threshold=*/1.f});
  const auto csr = engine_eval(csr_eng, xs);
  EXPECT_GT(csr_eng.stats().csr_dispatches, 0);

  EXPECT_EQ(max_step_diff(packed, csr), 0.f);
}

TEST_F(InferTest, PackedMatchesCsrAndDenseAcrossJoinTypes) {
  // ASC joins change only the accumulation ORDER between the packed
  // (term-by-term) and CSR (pre-assembled) paths, so agreement is to
  // rounding; DSC concat terms and strided/projection blocks ride along.
  for (const std::string model :
       {"resnet18s", "densenet121s", "mobilenetv2s"}) {
    ModelConfig cfg = small_cfg();
    Network net = build_model(model, cfg, default_adjacencies(model, cfg));
    const Shape in{2, cfg.in_channels, 8, 8};
    warm_bn_stats(net, in, 4);
    const auto xs = spike_inputs(in, 4, 0.15f, 43);
    const infer::PlanPtr plan = infer::compile(net, in);

    Engine packed_eng(plan, ExecOptions{/*packed=*/true, /*threshold=*/1.f});
    const auto packed = engine_eval(packed_eng, xs);
    EXPECT_GT(packed_eng.stats().packed_dispatches, 0) << model;

    Engine csr_eng(plan, ExecOptions{/*packed=*/false, /*threshold=*/1.f});
    const auto csr = engine_eval(csr_eng, xs);

    Engine dense_eng(plan, ExecOptions{/*packed=*/true, /*threshold=*/0.f});
    const auto dense = engine_eval(dense_eng, xs);

    EXPECT_LE(max_step_diff(packed, csr), 1e-4f) << model;
    EXPECT_LE(max_step_diff(packed, dense), 1e-4f) << model;
  }
}

// --- plan invariants --------------------------------------------------------

TEST_F(InferTest, BufferPlanNeverAliasesLiveValues) {
  ModelConfig cfg = small_cfg();
  Network net =
      build_model("resnet18s", cfg, default_adjacencies("resnet18s", cfg));
  const Shape in{2, cfg.in_channels, 8, 8};
  const Plan plan = infer::compile_plan(net, in);
  ASSERT_GT(plan.ops.size(), 8u);

  auto overlap = [](std::int64_t a0, std::int64_t a1, std::int64_t b0,
                    std::int64_t b1) { return a0 < b1 && b0 < a1; };
  for (std::size_t i = 0; i < plan.values.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.values.size(); ++j) {
      const auto& a = plan.values[i];
      const auto& b = plan.values[j];
      const int a_last = std::max(a.last_use, a.def);
      const int b_last = std::max(b.last_use, b.def);
      const bool live_together = a.def <= b_last && b.def <= a_last;
      if (!live_together) continue;
      EXPECT_FALSE(overlap(a.dense_off, a.dense_off + a.floats, b.dense_off,
                           b.dense_off + b.floats))
          << "float arena aliasing between values " << i << " and " << j;
      if (a.words > 0 && b.words > 0) {
        EXPECT_FALSE(overlap(a.packed_off, a.packed_off + a.words,
                             b.packed_off, b.packed_off + b.words))
            << "word arena aliasing between values " << i << " and " << j;
      }
    }
  }
  // Arena sizes cover every placed value.
  for (const auto& v : plan.values) {
    EXPECT_LE(v.dense_off + v.floats, plan.float_arena);
    if (v.words > 0) {
      EXPECT_LE(v.packed_off + v.words, plan.word_arena);
    }
  }
}

TEST_F(InferTest, PackedSteadyStateIsAllocationFree) {
  ModelConfig cfg = small_cfg();
  Network net =
      build_model("resnet18s", cfg, default_adjacencies("resnet18s", cfg));
  const Shape in{2, cfg.in_channels, 8, 8};
  Engine eng(infer::compile(net, in),
             ExecOptions{/*packed=*/true, /*threshold=*/1.f});

  const auto xs = spike_inputs(in, 6, 0.15f, 51);
  Tensor out(eng.plan().output_shape);
  eng.step(xs[0], &out);
  eng.step(xs[1], &out);

  // The packed path never touches the Workspace arena, and all engine
  // buffers were preallocated from the plan's high-water sizes — further
  // steps must not trigger a single heap allocation through it.
  const std::size_t before = Workspace::tls().heap_allocs();
  for (std::size_t t = 2; t < xs.size(); ++t) eng.step(xs[t], &out);
  EXPECT_EQ(Workspace::tls().heap_allocs(), before);
  EXPECT_EQ(eng.stats().steps, static_cast<std::int64_t>(xs.size()));
}

TEST_F(InferTest, RecurrentEdgesAreRejected) {
  ModelConfig cfg = small_cfg();
  auto specs = single_block_specs(cfg);
  ASSERT_EQ(specs.size(), 1u);
  Adjacency adj = Adjacency::chain(specs[0].depth());
  adj.set_recurrent(2, 2, SkipType::ASC);
  Network net = build_single_block(cfg, {adj});
  const Shape in{2, cfg.in_channels, 8, 8};
  EXPECT_THROW(infer::compile_plan(net, in), std::invalid_argument);
}

TEST_F(InferTest, CompiledCheckpointRoundTrip) {
  ModelConfig cfg = small_cfg();
  Network net =
      build_model("resnet18s", cfg, default_adjacencies("resnet18s", cfg));
  const Shape in{2, cfg.in_channels, 8, 8};
  warm_bn_stats(net, in, 4);
  const std::string path =
      ::testing::TempDir() + "/infer_roundtrip.snnskip2";
  ASSERT_TRUE(save_network(path, net));

  ModelConfig other = cfg;
  other.seed = 1234;  // different init — load must overwrite everything
  Network loaded =
      build_model("resnet18s", other, default_adjacencies("resnet18s", cfg));
  ASSERT_GT(load_network(path, loaded), 0u);
  std::remove(path.c_str());

  const auto xs = spike_inputs(in, 4, 0.2f, 61);
  Engine a(infer::compile(net, in));
  Engine b(infer::compile(loaded, in));
  EXPECT_EQ(max_step_diff(engine_eval(a, xs), engine_eval(b, xs)), 0.f);
}

TEST_F(InferTest, StatsAndEnergyAccounting) {
  ModelConfig cfg = small_cfg();
  Network net =
      build_model("resnet18s", cfg, default_adjacencies("resnet18s", cfg));
  const Shape in{2, cfg.in_channels, 8, 8};
  Engine eng(infer::compile(net, in),
             ExecOptions{/*packed=*/true, /*threshold=*/1.f});
  engine_eval(eng, spike_inputs(in, 4, 0.2f, 71));

  const infer::ExecStats& st = eng.stats();
  EXPECT_EQ(st.steps, 4);
  EXPECT_GT(st.packed_dispatches, 0);
  EXPECT_GT(st.spikes, 0);
  EXPECT_GT(st.synops, 0);      // exact popcount-driven accumulates
  EXPECT_GT(st.dense_macs, 0);  // head linear (and proj convs) run dense
  const double e = st.energy_pj();
  EXPECT_GT(e, 0.0);
  EXPECT_NEAR(e, 0.9 * static_cast<double>(st.synops) +
                     4.6 * static_cast<double>(st.dense_macs),
              1e-6 * e);

  eng.reset_stats();
  EXPECT_EQ(eng.stats().steps, 0);
}

// --- per-engine ExecOptions (ISSUE 7) ---------------------------------------

TEST_F(InferTest, DeprecatedShimsOnlyAffectFutureEngines) {
  // The InferExec setters adjust the process-wide defaults consumed at
  // construction; a live engine's snapshot never changes.
  ModelConfig cfg = small_cfg();
  Network net = build_model("single_block", cfg,
                            default_adjacencies("single_block", cfg));
  const Shape in{2, cfg.in_channels, 8, 8};
  const infer::PlanPtr plan = infer::compile(net, in);

  InferExec::set_packed_enabled(true);
  InferExec::set_threshold(1.f);
  Engine before(plan);
  InferExec::set_packed_enabled(false);
  InferExec::set_threshold(0.f);
  Engine after(plan);

  EXPECT_TRUE(before.options().packed);
  EXPECT_EQ(before.options().threshold, 1.f);
  EXPECT_FALSE(after.options().packed);
  EXPECT_EQ(after.options().threshold, 0.f);

  const auto xs = spike_inputs(in, 3, 0.15f, 81);
  engine_eval(before, xs);
  engine_eval(after, xs);
  EXPECT_GT(before.stats().packed_dispatches, 0);
  EXPECT_EQ(after.stats().packed_dispatches, 0);
  EXPECT_GT(after.stats().dense_dispatches, 0);
}

TEST_F(InferTest, ConcurrentEnginesWithDistinctOptionsMatchSerial) {
  // N threads, each its own Engine over one shared plan with a different
  // dispatch configuration, must reproduce the serial single-engine runs
  // BITWISE — the acceptance bar for removing the process-global mutable
  // execution config (no hidden shared state left to race on).
  ModelConfig cfg = small_cfg();
  Network net =
      build_model("resnet18s", cfg, default_adjacencies("resnet18s", cfg));
  const Shape in{2, cfg.in_channels, 8, 8};
  warm_bn_stats(net, in, 4);
  const infer::PlanPtr plan = infer::compile(net, in);

  const std::vector<ExecOptions> configs = {
      {/*packed=*/true, /*threshold=*/1.f},
      {/*packed=*/false, /*threshold=*/1.f},
      {/*packed=*/true, /*threshold=*/0.f},
      {/*packed=*/true, /*threshold=*/0.25f},
  };
  std::vector<std::vector<Tensor>> inputs;
  std::vector<std::vector<Tensor>> serial(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    inputs.push_back(spike_inputs(in, 4, 0.2f, 90 + i));
    Engine eng(plan, configs[i]);
    serial[i] = engine_eval(eng, inputs[i]);
  }

  std::vector<std::vector<Tensor>> threaded(configs.size());
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    threads.emplace_back([&, i] {
      Engine eng(plan, configs[i]);
      threaded[i] = engine_eval(eng, inputs[i]);
    });
  }
  for (auto& t : threads) t.join();

  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(max_step_diff(serial[i], threaded[i]), 0.f)
        << "config " << i << " diverged under concurrency";
  }
}

// --- int8 quantized plans (ISSUE 10) ----------------------------------------

infer::QuantProfile calibrate(Network& net, const Shape& in,
                              std::int64_t steps, std::uint64_t seed) {
  const infer::PlanPtr fplan = infer::compile(net, in);
  Rng rng(seed);
  std::vector<std::vector<Tensor>> seqs(1);
  for (std::int64_t t = 0; t < steps; ++t) {
    seqs[0].push_back(Tensor::bernoulli(in, rng, 0.25f));
  }
  return infer::calibrate_quant(fplan, seqs);
}

std::int64_t argmax_of_sum(const std::vector<Tensor>& outs) {
  const std::int64_t n = outs.front().numel();
  std::vector<double> acc(static_cast<std::size_t>(n), 0.0);
  for (const Tensor& o : outs) {
    for (std::int64_t i = 0; i < n; ++i) {
      acc[static_cast<std::size_t>(i)] += o.data()[i];
    }
  }
  std::int64_t best = 0;
  for (std::int64_t i = 1; i < n; ++i) {
    if (acc[static_cast<std::size_t>(i)] >
        acc[static_cast<std::size_t>(best)]) {
      best = i;
    }
  }
  return best;
}

TEST_F(InferTest, Int8PlanTracksFp32AcrossAddJoins) {
  // The rescale composition on ASC (addition) joins: every sunk skip term
  // shares the consumer's per-channel scale panel, so skips never force a
  // dequantized detour. The int8 plan must track the fp32 plan to the
  // quantization budget — per-weight error is at most half a step
  // (S[o]/2), so summed head logits agree on their argmax and stay within
  // a small relative band.
  for (const std::string model : {"single_block", "resnet18s"}) {
    ModelConfig cfg = small_cfg();
    Network net = build_model(model, cfg, default_adjacencies(model, cfg));
    const Shape in{2, cfg.in_channels, 8, 8};
    warm_bn_stats(net, in, 4);
    const infer::QuantProfile prof = calibrate(net, in, 6, 113);

    CompileOptions qopts;
    qopts.precision = infer::Precision::Int8;
    qopts.quant = &prof;
    Engine fp(infer::compile(net, in));
    Engine q(infer::compile(net, in, qopts));
    EXPECT_EQ(q.plan().precision, infer::Precision::Int8);

    int agree = 0;
    const int trials = 8;
    float worst = 0.f, scale = 0.f;
    for (int s = 0; s < trials; ++s) {
      const auto xs = spike_inputs(in, 4, 0.25f, 200 + s);
      const auto ref = engine_eval(fp, xs);
      const auto got = engine_eval(q, xs);
      agree += argmax_of_sum(ref) == argmax_of_sum(got) ? 1 : 0;
      worst = std::max(worst, max_step_diff(ref, got));
      for (const Tensor& o : ref) {
        for (std::int64_t i = 0; i < o.numel(); ++i) {
          scale = std::max(scale, std::fabs(o.data()[i]));
        }
      }
    }
    EXPECT_GE(agree, trials - 1) << model;
    EXPECT_LE(worst, 0.05f * std::max(1.f, scale)) << model;
  }
}

TEST_F(InferTest, Int8PackedMatchesDenseBitwiseOnSpikingOps) {
  // Chain adjacency: every conv input is binary spikes, so the
  // activation step is exactly 1.0, quantization is lossless, and the
  // packed integer event walk and the dense im2row + int8 GEMM route
  // must agree BITWISE (int32 addition is associative — dispatch order
  // cannot matter). The head linear consumes pooled analog input but
  // runs the identical dense quantized path in both engines.
  ModelConfig cfg = small_cfg();
  Network net = build_model("single_block", cfg, {Adjacency::chain(4)});
  const Shape in{2, cfg.in_channels, 8, 8};
  warm_bn_stats(net, in, 4);
  const infer::QuantProfile prof = calibrate(net, in, 6, 117);

  CompileOptions qopts;
  qopts.precision = infer::Precision::Int8;
  qopts.quant = &prof;
  const infer::PlanPtr plan = infer::compile(net, in, qopts);

  const auto xs = spike_inputs(in, 4, 0.2f, 211);
  Engine packed_eng(plan, ExecOptions{/*packed=*/true, /*threshold=*/1.f});
  const auto packed = engine_eval(packed_eng, xs);
  EXPECT_GT(packed_eng.stats().packed_dispatches, 0);

  Engine dense_eng(plan, ExecOptions{/*packed=*/false, /*threshold=*/0.f});
  const auto dense = engine_eval(dense_eng, xs);
  EXPECT_GT(dense_eng.stats().dense_dispatches, 0);

  EXPECT_EQ(max_step_diff(packed, dense), 0.f);
}

TEST_F(InferTest, Int8PlanShrinksWeightMemory) {
  // The acceptance floor from ISSUE 10: one int8 copy of each weight
  // panel plus per-timestep float scale/bias vectors must undercut the
  // fp32 plan's per-timestep folded weight copies by at least 0.30x.
  ModelConfig cfg = small_cfg();
  Network net =
      build_model("resnet18s", cfg, default_adjacencies("resnet18s", cfg));
  const Shape in{2, cfg.in_channels, 8, 8};
  warm_bn_stats(net, in, 4);
  const infer::QuantProfile prof = calibrate(net, in, 6, 119);

  CompileOptions qopts;
  qopts.precision = infer::Precision::Int8;
  qopts.quant = &prof;
  const infer::PlanPtr fp = infer::compile(net, in);
  const infer::PlanPtr q = infer::compile(net, in, qopts);
  ASSERT_GT(fp->weight_bytes(), 0);
  EXPECT_LE(static_cast<double>(q->weight_bytes()),
            0.30 * static_cast<double>(fp->weight_bytes()));
}

TEST_F(InferTest, Int8PlanRejectsNoFoldAndAnalogInput) {
  ModelConfig cfg = small_cfg();
  Network net = build_model("single_block", cfg,
                            default_adjacencies("single_block", cfg));
  const Shape in{2, cfg.in_channels, 8, 8};

  // BN must be folded: the scheme absorbs the per-timestep BN transform
  // into the requantization scale — without folding there is nothing to
  // absorb it into.
  CompileOptions nofold;
  nofold.precision = infer::Precision::Int8;
  nofold.fold_bn = false;
  EXPECT_THROW(infer::compile_plan(net, in, nofold), std::invalid_argument);

  // Analog (non-binary) network input would be integer-rounded by the
  // stem's exact unit step — rejected rather than silently degraded.
  warm_bn_stats(net, in, 4);
  const infer::QuantProfile prof = calibrate(net, in, 4, 121);
  CompileOptions qopts;
  qopts.precision = infer::Precision::Int8;
  qopts.quant = &prof;
  Engine q(infer::compile(net, in, qopts));
  Tensor analog(in);
  analog.fill(0.5f);
  Tensor out;
  EXPECT_THROW(q.step(analog, &out), std::invalid_argument);
}

TEST_F(InferTest, InputShapeMismatchThrows) {
  ModelConfig cfg = small_cfg();
  Network net = build_model("single_block", cfg,
                            default_adjacencies("single_block", cfg));
  const Shape in{2, cfg.in_channels, 8, 8};
  Engine eng(infer::compile(net, in));
  Tensor bad(Shape{1, cfg.in_channels, 8, 8});
  Tensor out;
  EXPECT_THROW(eng.step(bad, &out), std::invalid_argument);
}

}  // namespace
}  // namespace snnskip
