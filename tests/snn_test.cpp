// Tests for the spiking runtime: LIF dynamics, surrogate gradients,
// encoders, and firing-rate accounting.

#include <gtest/gtest.h>

#include <cmath>

#include "snn/encoders.h"
#include "snn/lif.h"
#include "snn/spike_stats.h"
#include "snn/surrogate.h"

namespace snnskip {
namespace {

LifConfig default_lif() {
  LifConfig cfg;
  cfg.beta = 0.9f;
  cfg.threshold = 1.f;
  return cfg;
}

TEST(Lif, SubthresholdInputNeverSpikes) {
  Lif lif(default_lif());
  Tensor x = Tensor::full(Shape{1, 1, 1, 1}, 0.05f);
  for (int t = 0; t < 10; ++t) {
    Tensor s = lif.forward(x, false);
    EXPECT_FLOAT_EQ(s[0], 0.f) << "t=" << t;
  }
  // Steady state membrane = x / (1 - beta) = 0.5 < threshold.
}

TEST(Lif, StrongInputSpikesImmediately) {
  Lif lif(default_lif());
  Tensor x = Tensor::full(Shape{1, 1, 1, 1}, 1.5f);
  Tensor s = lif.forward(x, false);
  EXPECT_FLOAT_EQ(s[0], 1.f);
}

TEST(Lif, IntegratesOverTime) {
  // 0.4 per step with beta 0.9: V = 0.4, 0.76, 1.084 -> spike at t=2.
  Lif lif(default_lif());
  Tensor x = Tensor::full(Shape{1}, 0.4f);
  EXPECT_FLOAT_EQ(lif.forward(x, false)[0], 0.f);
  EXPECT_FLOAT_EQ(lif.forward(x, false)[0], 0.f);
  EXPECT_FLOAT_EQ(lif.forward(x, false)[0], 1.f);
}

TEST(Lif, SoftResetSubtractsThreshold) {
  // After the t=2 spike above, V' = 1.084 - 1 = 0.084; next V = 0.4756 —
  // no immediate second spike.
  Lif lif(default_lif());
  Tensor x = Tensor::full(Shape{1}, 0.4f);
  lif.forward(x, false);
  lif.forward(x, false);
  lif.forward(x, false);  // spike
  EXPECT_FLOAT_EQ(lif.forward(x, false)[0], 0.f);
}

TEST(Lif, ResetStateClearsMembrane) {
  Lif lif(default_lif());
  Tensor x = Tensor::full(Shape{1}, 0.9f);
  lif.forward(x, false);  // V = 0.9
  lif.reset_state();
  // Same input from scratch: still below threshold on the first step.
  EXPECT_FLOAT_EQ(lif.forward(x, false)[0], 0.f);
}

TEST(Lif, LeakDecaysMembrane) {
  LifConfig cfg = default_lif();
  cfg.beta = 0.5f;  // strong leak
  Lif lif(cfg);
  Tensor pulse = Tensor::full(Shape{1}, 0.9f);
  Tensor silence(Shape{1});
  lif.forward(pulse, false);    // V = 0.9
  lif.forward(silence, false);  // V = 0.45
  lif.forward(silence, false);  // V = 0.225
  // A 0.7 input now only reaches 0.8125 < 1: no spike.
  Tensor probe = Tensor::full(Shape{1}, 0.7f);
  EXPECT_FLOAT_EQ(lif.forward(probe, false)[0], 0.f);
}

TEST(Lif, OutputIsBinary) {
  Rng rng(41);
  Lif lif(default_lif());
  Tensor x = Tensor::randn(Shape{2, 3, 4, 4}, rng, 0.5f, 1.f);
  Tensor s = lif.forward(x, false);
  for (std::int64_t i = 0; i < s.numel(); ++i) {
    const float v = s[static_cast<std::size_t>(i)];
    EXPECT_TRUE(v == 0.f || v == 1.f);
  }
}

TEST(Lif, BackwardSingleStepMatchesSurrogate) {
  // One timestep: dS/dx = surrogate'(V - theta) and V = x.
  LifConfig cfg = default_lif();
  Lif lif(cfg);
  Tensor x = Tensor::full(Shape{1}, 0.7f);
  lif.forward(x, true);
  Tensor g = Tensor::full(Shape{1}, 1.f);
  Tensor gx = lif.backward(g);
  const float expected = cfg.surrogate.grad(0.7f - 1.f);
  EXPECT_NEAR(gx[0], expected, 1e-6f);
}

TEST(Lif, BackwardCarriesMembraneGradientThroughTime) {
  // Two steps, no spikes. dS2/dx1 = sigma'(V2-theta) * beta.
  LifConfig cfg = default_lif();
  Lif lif(cfg);
  Tensor x1 = Tensor::full(Shape{1}, 0.3f);
  Tensor x2 = Tensor::full(Shape{1}, 0.2f);
  lif.forward(x1, true);  // V1 = 0.3
  lif.forward(x2, true);  // V2 = 0.47
  // Only the second step's output matters in the probe loss.
  Tensor g1 = Tensor::full(Shape{1}, 1.f);
  Tensor g0(Shape{1});
  Tensor gx2 = lif.backward(g1);  // t=1
  Tensor gx1 = lif.backward(g0);  // t=0: receives only the carried path
  const float s2 = cfg.surrogate.grad(0.47f - 1.f);
  EXPECT_NEAR(gx2[0], s2, 1e-5f);
  EXPECT_NEAR(gx1[0], cfg.beta * s2, 1e-5f);
}

TEST(Lif, DetachResetChangesGradient) {
  // After a spike, detach_reset=false includes the -theta*sigma' term.
  LifConfig cfg = default_lif();
  cfg.detach_reset = false;
  Lif lif_nd(cfg);
  cfg.detach_reset = true;
  Lif lif_d(cfg);

  Tensor x1 = Tensor::full(Shape{1}, 1.2f);  // spikes at t=0
  Tensor x2 = Tensor::full(Shape{1}, 0.8f);
  Tensor g1 = Tensor::full(Shape{1}, 1.f);
  Tensor g0(Shape{1});

  lif_nd.forward(x1, true);
  lif_nd.forward(x2, true);
  lif_nd.backward(g1);
  Tensor gnd = lif_nd.backward(g0);

  lif_d.forward(x1, true);
  lif_d.forward(x2, true);
  lif_d.backward(g1);
  Tensor gd = lif_d.backward(g0);

  EXPECT_NE(gnd[0], gd[0]);
}

TEST(Lif, RefractoryPeriodSilencesAfterSpike) {
  LifConfig cfg = default_lif();
  cfg.refractory = 2;
  Lif lif(cfg);
  Tensor x = Tensor::full(Shape{1}, 1.5f);  // would spike every step
  EXPECT_FLOAT_EQ(lif.forward(x, false)[0], 1.f);  // t0: spike
  EXPECT_FLOAT_EQ(lif.forward(x, false)[0], 0.f);  // t1: refractory
  EXPECT_FLOAT_EQ(lif.forward(x, false)[0], 0.f);  // t2: refractory
  EXPECT_FLOAT_EQ(lif.forward(x, false)[0], 1.f);  // t3: live again
}

TEST(Lif, ZeroRefractoryMatchesLegacyBehavior) {
  Lif lif(default_lif());
  Tensor x = Tensor::full(Shape{1}, 1.5f);
  for (int t = 0; t < 4; ++t) {
    EXPECT_FLOAT_EQ(lif.forward(x, false)[0], 1.f) << "t=" << t;
  }
}

TEST(Lif, RefractoryMasksSpikeGradient) {
  LifConfig cfg = default_lif();
  cfg.refractory = 3;
  Lif lif(cfg);
  Tensor x = Tensor::full(Shape{1}, 1.5f);
  lif.forward(x, true);  // spike
  lif.forward(x, true);  // silenced
  Tensor g1 = Tensor::full(Shape{1}, 1.f);
  // Backward at the silenced step: no surrogate path, only the carry
  // (which is zero here since nothing flowed from later steps).
  Tensor gx_silenced = lif.backward(g1);
  EXPECT_FLOAT_EQ(gx_silenced[0], 0.f);
  // Backward at the spiking step: normal surrogate gradient (plus carry).
  Tensor gx_live = lif.backward(g1);
  EXPECT_NE(gx_live[0], 0.f);
  lif.reset_state();
}

TEST(Lif, RefractoryStateClearsOnReset) {
  LifConfig cfg = default_lif();
  cfg.refractory = 5;
  Lif lif(cfg);
  Tensor x = Tensor::full(Shape{1}, 1.5f);
  lif.forward(x, false);  // spike -> refractory armed
  lif.reset_state();
  EXPECT_FLOAT_EQ(lif.forward(x, false)[0], 1.f);  // fresh neuron spikes
}

TEST(Surrogate, FastSigmoidPeaksAtThreshold) {
  Surrogate s{SurrogateKind::FastSigmoid, 5.f};
  EXPECT_FLOAT_EQ(s.grad(0.f), 1.f);
  EXPECT_GT(s.grad(0.f), s.grad(0.5f));
  EXPECT_FLOAT_EQ(s.grad(0.3f), s.grad(-0.3f));  // symmetric
}

TEST(Surrogate, AtanShape) {
  Surrogate s{SurrogateKind::Atan, 2.f};
  EXPECT_GT(s.grad(0.f), 0.f);
  EXPECT_GT(s.grad(0.f), s.grad(1.f));
  EXPECT_GT(s.grad(5.f), 0.f);  // heavy tails
}

TEST(Surrogate, BoxcarWindow) {
  Surrogate s{SurrogateKind::Boxcar, 2.f};  // half-width 0.5
  EXPECT_FLOAT_EQ(s.grad(0.f), 1.f);        // 0.5 / 0.5
  EXPECT_FLOAT_EQ(s.grad(0.4f), 1.f);
  EXPECT_FLOAT_EQ(s.grad(0.6f), 0.f);
}

TEST(Surrogate, StringRoundTrip) {
  for (auto k : {SurrogateKind::FastSigmoid, SurrogateKind::Atan,
                 SurrogateKind::Boxcar}) {
    EXPECT_EQ(surrogate_from_string(to_string(k)), k);
  }
  EXPECT_THROW(surrogate_from_string("nope"), std::invalid_argument);
}

TEST(PoissonEncoder, RateTracksIntensity) {
  PoissonEncoder enc(77);
  Tensor x = Tensor::full(Shape{1, 1, 50, 50}, 0.3f);
  double total = 0.0;
  const int steps = 20;
  for (int t = 0; t < steps; ++t) {
    total += enc.encode(x, t).nonzero_fraction();
  }
  EXPECT_NEAR(total / steps, 0.3, 0.02);
}

TEST(PoissonEncoder, ResetRewindsStream) {
  PoissonEncoder enc(78);
  Tensor x = Tensor::full(Shape{1, 1, 8, 8}, 0.5f);
  Tensor first = enc.encode(x, 0);
  enc.reset();
  Tensor again = enc.encode(x, 0);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(first, again), 0.f);
}

TEST(PoissonEncoder, ClampsOutOfRange) {
  PoissonEncoder enc(79);
  Tensor x = Tensor::full(Shape{1, 1, 10, 10}, 2.f);  // p clamps to 1
  EXPECT_DOUBLE_EQ(enc.encode(x, 0).nonzero_fraction(), 1.0);
}

TEST(DirectEncoder, PassesInputThrough) {
  DirectEncoder enc;
  Rng rng(80);
  Tensor x = Tensor::randn(Shape{2, 3, 4, 4}, rng);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(enc.encode(x, 0), x), 0.f);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(enc.encode(x, 5), x), 0.f);
}

TEST(EventEncoder, SlicesTimesteps) {
  EventEncoder enc(3, 2);  // T=3, C=2
  Tensor x(Shape{1, 6, 2, 2});
  for (std::int64_t c = 0; c < 6; ++c) {
    for (std::int64_t i = 0; i < 4; ++i) {
      x[static_cast<std::size_t>(c * 4 + i)] = static_cast<float>(c);
    }
  }
  Tensor t1 = enc.encode(x, 1);
  EXPECT_EQ(t1.shape(), (Shape{1, 2, 2, 2}));
  EXPECT_FLOAT_EQ(t1[0], 2.f);  // channels 2,3 belong to t=1
  EXPECT_FLOAT_EQ(t1[4], 3.f);
}

TEST(FiringRateRecorder, AccumulatesAndResets) {
  FiringRateRecorder rec;
  rec.record("a", 10.0, 100.0);
  rec.record("b", 5.0, 100.0);
  EXPECT_NEAR(rec.overall_rate(), 15.0 / 200.0, 1e-12);
  const auto per = rec.per_layer_rates();
  EXPECT_NEAR(per.at("a"), 0.10, 1e-12);
  EXPECT_NEAR(per.at("b"), 0.05, 1e-12);
  rec.reset();
  EXPECT_DOUBLE_EQ(rec.overall_rate(), 0.0);
}

TEST(FiringRateRecorder, LifReportsSpikes) {
  FiringRateRecorder rec;
  Lif lif(default_lif(), "probe");
  lif.set_recorder(&rec);
  Tensor x = Tensor::full(Shape{10}, 1.5f);  // all spike
  lif.forward(x, false);
  EXPECT_DOUBLE_EQ(rec.overall_rate(), 1.0);
  lif.reset_state();
  Tensor silent(Shape{10});
  lif.forward(silent, false);
  EXPECT_DOUBLE_EQ(rec.overall_rate(), 0.5);  // 10 spikes / 20 neuron-steps
}

}  // namespace
}  // namespace snnskip
