// Tests for the telemetry subsystem (ISSUE 2): scoped spans, counters,
// Chrome-trace export/validation, and the disabled-mode cost contract.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "graph/adjacency.h"
#include "infer/compile.h"
#include "infer/engine.h"
#include "models/zoo.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_export.h"
#include "util/json_writer.h"
#include "util/rng.h"

namespace snnskip {
namespace {

// Every test starts from a clean, disabled registry and leaves it that way
// so ordering within the binary cannot matter.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Telemetry::set_enabled(false);
    Telemetry::reset();
  }
  void TearDown() override {
    Telemetry::set_enabled(false);
    Telemetry::reset();
  }
};

const telemetry::SpanStat* find_span(const telemetry::Snapshot& snap,
                                     const std::string& cat,
                                     const std::string& name) {
  for (const auto& s : snap.spans) {
    if (s.cat == cat && s.name == name) return &s;
  }
  return nullptr;
}

TEST_F(TelemetryTest, NestedSpansRecordContainedIntervals) {
  Telemetry::set_enabled(true);
  {
    SNNSKIP_SPAN("outer", "fit");
    {
      SNNSKIP_SPAN("inner", "forward");
    }
    {
      SNNSKIP_SPAN("inner", "backward");
    }
  }
  const telemetry::Snapshot snap = telemetry::snapshot();
  ASSERT_EQ(snap.events.size(), 3u);

  const telemetry::SpanStat* outer = find_span(snap, "outer", "fit");
  const telemetry::SpanStat* fwd = find_span(snap, "inner", "forward");
  const telemetry::SpanStat* bwd = find_span(snap, "inner", "backward");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(fwd, nullptr);
  ASSERT_NE(bwd, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(fwd->count, 1u);
  EXPECT_EQ(bwd->count, 1u);
  // The parent interval encloses both children.
  EXPECT_GE(outer->total_ns, fwd->total_ns + bwd->total_ns);

  // Events come back sorted by start time and nested inside the parent.
  const telemetry::TraceEvent* parent = nullptr;
  for (const auto& e : snap.events) {
    if (e.name == "fit") parent = &e;
  }
  ASSERT_NE(parent, nullptr);
  for (const auto& e : snap.events) {
    if (&e == parent) continue;
    EXPECT_GE(e.ts_ns, parent->ts_ns);
    EXPECT_LE(e.ts_ns + e.dur_ns, parent->ts_ns + parent->dur_ns);
  }
  for (std::size_t i = 1; i < snap.events.size(); ++i) {
    EXPECT_LE(snap.events[i - 1].ts_ns, snap.events[i].ts_ns);
  }
}

TEST_F(TelemetryTest, AggregateOnlySpansSkipTraceEvents) {
  Telemetry::set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    SNNSKIP_SPAN_AGG("gemm", "gemm_nt");
  }
  const telemetry::Snapshot snap = telemetry::snapshot();
  EXPECT_TRUE(snap.events.empty());
  const telemetry::SpanStat* s = find_span(snap, "gemm", "gemm_nt");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 10u);
}

TEST_F(TelemetryTest, CountersAccumulateAndTrackMaxima) {
  Telemetry::set_enabled(true);
  Telemetry::count("dispatch.sparse");
  Telemetry::count("dispatch.sparse");
  Telemetry::count("dispatch.nnz", 40.0);
  Telemetry::count_max("arena.hw", 100.0);
  Telemetry::count_max("arena.hw", 60.0);  // lower value must not win
  Telemetry::count_max("arena.hw", 250.0);

  const std::map<std::string, double> c = Telemetry::counters();
  EXPECT_DOUBLE_EQ(c.at("dispatch.sparse"), 2.0);
  EXPECT_DOUBLE_EQ(c.at("dispatch.nnz"), 40.0);
  EXPECT_DOUBLE_EQ(c.at("arena.hw"), 250.0);

  Telemetry::reset();
  EXPECT_TRUE(Telemetry::counters().empty());
}

TEST_F(TelemetryTest, ConcurrentSpansAndCountersMergeLosslessly) {
  Telemetry::set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kIters; ++i) {
        SNNSKIP_SPAN("mt", "work");
        Telemetry::count("mt.iterations");
      }
    });
  }
  for (auto& th : threads) th.join();

  const telemetry::Snapshot snap = telemetry::snapshot();
  const telemetry::SpanStat* s = find_span(snap, "mt", "work");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(snap.events.size(), static_cast<std::size_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(snap.counters.at("mt.iterations"),
                   static_cast<double>(kThreads) * kIters);

  // Buffers of exited threads must survive into later snapshots too.
  const telemetry::Snapshot again = telemetry::snapshot();
  const telemetry::SpanStat* s2 = find_span(again, "mt", "work");
  ASSERT_NE(s2, nullptr);
  EXPECT_EQ(s2->count, s->count);
}

TEST_F(TelemetryTest, ChromeTraceRoundTripsThroughValidator) {
  Telemetry::set_enabled(true);
  {
    SNNSKIP_SPAN("train", "epoch");
    SNNSKIP_SPAN("conv.fwd.dense", "features \"odd\" \\name");
  }
  telemetry::instant("train", "epoch 0 end");

  const std::string path = "telemetry_test_trace.json";
  ASSERT_TRUE(write_chrome_trace(path));
  std::string error;
  EXPECT_TRUE(validate_chrome_trace(path, &error)) << error;
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, CompiledInferenceEmitsSpansAndCounters) {
  // The compiled-inference engine (ISSUE 6) instruments each step with an
  // infer.step span plus infer.* counters; the whole run must also export
  // as a valid Chrome trace (round-trip through the validator).
  ModelConfig cfg;
  cfg.width = 8;
  cfg.in_channels = 2;
  cfg.num_classes = 10;
  cfg.max_timesteps = 10;
  cfg.seed = 7;
  Network net =
      build_model("single_block", cfg, default_adjacencies("single_block", cfg));
  const Shape in_shape{1, 2, 8, 8};
  infer::Plan plan = infer::compile_plan(net, in_shape);
  plan.model_name = "single_block";  // the infer.step span label
  infer::Engine eng(
      std::make_shared<const infer::Plan>(std::move(plan)));

  Telemetry::set_enabled(true);
  Rng rng(3);
  const std::int64_t steps = 4;
  for (std::int64_t t = 0; t < steps; ++t) {
    eng.step(Tensor::bernoulli(in_shape, rng, 0.1f));
  }

  const telemetry::Snapshot snap = telemetry::snapshot();
  const telemetry::SpanStat* s = find_span(snap, "infer.step", "single_block");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, static_cast<std::uint64_t>(steps));
  EXPECT_DOUBLE_EQ(snap.counters.at("infer.steps"),
                   static_cast<double>(steps));
  // Dispatch counters mirror the engine's own stats exactly.
  const auto& st = eng.stats();
  double layers = 0.0;
  for (const char* k :
       {"infer.packed_layers", "infer.csr_layers", "infer.dense_layers"}) {
    auto it = snap.counters.find(k);
    if (it != snap.counters.end()) layers += it->second;
  }
  EXPECT_DOUBLE_EQ(layers, static_cast<double>(st.packed_dispatches +
                                               st.csr_dispatches +
                                               st.dense_dispatches));
  EXPECT_DOUBLE_EQ(snap.counters.at("infer.spikes_popcount"),
                   static_cast<double>(st.spikes));

  const std::string path = "telemetry_test_infer_trace.json";
  ASSERT_TRUE(write_chrome_trace(path));
  std::string error;
  EXPECT_TRUE(validate_chrome_trace(path, &error)) << error;
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, ValidatorRejectsMalformedTraces) {
  const std::string path = "telemetry_test_bad.json";
  std::string error;

  {
    std::ofstream f(path);
    f << "{\"not\": \"an array\"}\n";
  }
  EXPECT_FALSE(validate_chrome_trace(path, &error));

  {
    std::ofstream f(path);
    f << "[{\"name\": \"x\", \"ph\": \"X\", \"ts\": 1.0}]\n";  // no dur/pid/tid
  }
  EXPECT_FALSE(validate_chrome_trace(path, &error));

  {
    std::ofstream f(path);
    f << "[]\n";  // empty trace is a validation failure for the smoke
  }
  EXPECT_FALSE(validate_chrome_trace(path, &error));

  std::remove(path.c_str());
  EXPECT_FALSE(validate_chrome_trace("telemetry_test_missing.json", &error));
}

TEST_F(TelemetryTest, SummaryListsSpansAndCounters) {
  Telemetry::set_enabled(true);
  {
    SNNSKIP_SPAN("train", "batch");
  }
  Telemetry::count("spikes", 123.0);
  const std::string summary = telemetry_summary();
  EXPECT_NE(summary.find("train"), std::string::npos);
  EXPECT_NE(summary.find("batch"), std::string::npos);
  EXPECT_NE(summary.find("spikes"), std::string::npos);
}

TEST_F(TelemetryTest, DisabledModeRecordsNothing) {
  ASSERT_FALSE(Telemetry::enabled());
  {
    SNNSKIP_SPAN("off", "span");
    SNNSKIP_SPAN_AGG("off", "agg");
  }
  Telemetry::count("off.counter");
  Telemetry::count_max("off.max", 10.0);
  telemetry::instant("off", "marker");

  const telemetry::Snapshot snap = telemetry::snapshot();
  EXPECT_TRUE(snap.events.empty());
  EXPECT_TRUE(snap.spans.empty());
  EXPECT_TRUE(snap.counters.empty());
}

TEST_F(TelemetryTest, DisabledSpansAreNearZeroCost) {
  ASSERT_FALSE(Telemetry::enabled());
  // The contract is one relaxed atomic load + branch per disabled span.
  // Assert a deliberately loose wall-clock bound (µs-per-span territory
  // would indicate an accidental clock read or allocation on the off
  // path): 1M disabled spans in well under a second even on slow CI.
  constexpr int kIters = 1000000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    SNNSKIP_SPAN("off", "hot");
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double ns_per_span =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / kIters;
  EXPECT_LT(ns_per_span, 250.0);
  EXPECT_TRUE(telemetry::snapshot().spans.empty());
}

TEST_F(TelemetryTest, JsonEscapeHandlesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST_F(TelemetryTest, JsonArrayWriterEmitsParseableRows)
{
  const std::string path = "telemetry_test_writer.json";
  {
    JsonArrayWriter json(path);
    ASSERT_TRUE(json.ok());
    json.begin_row();
    json.field("name", std::string("row \"one\""));
    json.field("ph", "X");
    json.field_fixed("ts", 1234567.891, 3);
    json.field("dur", 2.5);
    json.field("pid", static_cast<std::int64_t>(0));
    json.field("tid", static_cast<std::int64_t>(1));
    json.end_row();
  }
  // The writer's output is itself a valid chrome trace when the required
  // keys are present — reuse the validator as the parser.
  std::string error;
  EXPECT_TRUE(validate_chrome_trace(path, &error)) << error;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace snnskip
