// Tests for the topology machinery: adjacency matrices, DSC channel
// subsets, block construction/widths under every join type, DAG execution,
// MAC accounting, and the network container.

#include <gtest/gtest.h>

#include "graph/adjacency.h"
#include "graph/block.h"
#include "graph/join.h"
#include "graph/mac_counter.h"
#include "graph/network.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace snnskip {
namespace {

// --- adjacency -------------------------------------------------------------

TEST(Adjacency, SlotCountIsTriangular) {
  EXPECT_EQ(Adjacency::skip_slots(1).size(), 0u);
  EXPECT_EQ(Adjacency::skip_slots(2).size(), 1u);
  EXPECT_EQ(Adjacency::skip_slots(3).size(), 3u);
  EXPECT_EQ(Adjacency::skip_slots(4).size(), 6u);
  EXPECT_EQ(Adjacency::skip_slots(5).size(), 10u);
}

TEST(Adjacency, SetAndGet) {
  Adjacency adj(4);
  adj.set(0, 2, SkipType::DSC);
  adj.set(1, 4, SkipType::ASC);
  EXPECT_EQ(adj.at(0, 2), SkipType::DSC);
  EXPECT_EQ(adj.at(1, 4), SkipType::ASC);
  EXPECT_EQ(adj.at(0, 3), SkipType::None);
}

TEST(Adjacency, RejectsNonSkipSlots) {
  Adjacency adj(3);
  EXPECT_THROW(adj.set(0, 1, SkipType::ASC), std::invalid_argument);
  EXPECT_THROW(adj.set(1, 2, SkipType::DSC), std::invalid_argument);
  EXPECT_THROW(adj.set(2, 4, SkipType::ASC), std::invalid_argument);
}

TEST(Adjacency, NSkipInCountsIncomingSkips) {
  Adjacency adj(4);
  adj.set(0, 3, SkipType::DSC);
  adj.set(1, 3, SkipType::ASC);
  adj.set(0, 4, SkipType::ASC);
  EXPECT_EQ(adj.n_skip_in(2), 0);
  EXPECT_EQ(adj.n_skip_in(3), 2);
  EXPECT_EQ(adj.n_skip_in(4), 1);
  EXPECT_EQ(adj.total_skips(), 3);
}

TEST(Adjacency, CountType) {
  Adjacency adj(4);
  adj.set(0, 2, SkipType::DSC);
  adj.set(0, 3, SkipType::DSC);
  adj.set(1, 4, SkipType::ASC);
  EXPECT_EQ(adj.count_type(SkipType::DSC), 2);
  EXPECT_EQ(adj.count_type(SkipType::ASC), 1);
  EXPECT_EQ(adj.count_type(SkipType::None), 3);
}

TEST(Adjacency, EncodeDecodeRoundTrip) {
  Adjacency adj(4);
  adj.set(0, 2, SkipType::DSC);
  adj.set(2, 4, SkipType::ASC);
  const auto code = adj.encode();
  EXPECT_EQ(code.size(), 6u);
  EXPECT_EQ(Adjacency::decode(4, code), adj);
}

TEST(Adjacency, DecodeRejectsBadInput) {
  EXPECT_THROW(Adjacency::decode(4, {0, 1}), std::invalid_argument);
  EXPECT_THROW(Adjacency::decode(2, {7}), std::invalid_argument);
}

TEST(Adjacency, UniformBuilderRespectsNSkip) {
  for (int n = 0; n <= 3; ++n) {
    const Adjacency adj = Adjacency::uniform(4, SkipType::ASC, n);
    // Layer j can have at most j-1 skips (nearest sources first).
    EXPECT_EQ(adj.n_skip_in(2), std::min(n, 1));
    EXPECT_EQ(adj.n_skip_in(3), std::min(n, 2));
    EXPECT_EQ(adj.n_skip_in(4), std::min(n, 3));
  }
}

TEST(Adjacency, AllBuilderFillsEverySlot) {
  const Adjacency adj = Adjacency::all(4, SkipType::DSC);
  EXPECT_EQ(adj.total_skips(), 6);
  EXPECT_EQ(adj.count_type(SkipType::DSC), 6);
}

TEST(Adjacency, ChainHasNoSkips) {
  EXPECT_EQ(Adjacency::chain(5).total_skips(), 0);
}

TEST(Adjacency, StrRendersMatrix) {
  const Adjacency adj = Adjacency::all(2, SkipType::ASC);
  const std::string s = adj.str();
  EXPECT_NE(s.find('A'), std::string::npos);
  EXPECT_NE(s.find('-'), std::string::npos);
}

// --- DSC channel subsets ----------------------------------------------------

TEST(DscSubset, DeterministicForSameEdge) {
  const auto a = dsc_channel_subset("blk", 0, 2, 16, 0.5);
  const auto b = dsc_channel_subset("blk", 0, 2, 16, 0.5);
  EXPECT_EQ(a, b);
}

TEST(DscSubset, DiffersAcrossEdges) {
  const auto a = dsc_channel_subset("blk", 0, 2, 16, 0.5);
  const auto b = dsc_channel_subset("blk", 0, 3, 16, 0.5);
  const auto c = dsc_channel_subset("other", 0, 2, 16, 0.5);
  EXPECT_TRUE(a != b || a != c);
}

TEST(DscSubset, SizeFollowsFraction) {
  EXPECT_EQ(dsc_channel_subset("b", 0, 2, 16, 0.5).size(), 8u);
  EXPECT_EQ(dsc_channel_subset("b", 0, 2, 16, 0.25).size(), 4u);
  EXPECT_EQ(dsc_channel_subset("b", 0, 2, 16, 1.0).size(), 16u);
  // Never fewer than one channel.
  EXPECT_EQ(dsc_channel_subset("b", 0, 2, 4, 0.01).size(), 1u);
}

TEST(DscSubset, SortedUniqueInRange) {
  const auto s = dsc_channel_subset("b", 1, 3, 10, 0.7);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_GE(s[i], 0);
    EXPECT_LT(s[i], 10);
    if (i > 0) {
      EXPECT_LT(s[i - 1], s[i]);
    }
  }
}

// --- block ------------------------------------------------------------------

BlockSpec conv_spec(const std::string& name, std::int64_t in_c,
                    std::vector<std::int64_t> out_cs,
                    std::vector<std::int64_t> strides = {}) {
  BlockSpec spec;
  spec.name = name;
  spec.in_channels = in_c;
  for (std::size_t i = 0; i < out_cs.size(); ++i) {
    const std::int64_t stride =
        strides.empty() ? 1 : strides[i];
    spec.nodes.push_back(NodePlan{NodeOp::Conv3x3, out_cs[i], stride, true});
  }
  return spec;
}

BlockConfig spiking_cfg(std::int64_t t_max = 4) {
  BlockConfig cfg;
  cfg.mode = NeuronMode::Spiking;
  cfg.max_timesteps = t_max;
  return cfg;
}

TEST(BlockSpec, DerivedQuantities) {
  BlockSpec spec = conv_spec("s", 4, {8, 8, 16}, {1, 2, 1});
  EXPECT_EQ(spec.depth(), 3);
  EXPECT_EQ(spec.node_out_channels(0), 4);
  EXPECT_EQ(spec.node_out_channels(2), 8);
  EXPECT_EQ(spec.node_out_channels(3), 16);
  EXPECT_EQ(spec.spatial_div(0), 1);
  EXPECT_EQ(spec.spatial_div(2), 2);
  EXPECT_EQ(spec.spatial_div(3), 2);
}

TEST(BlockSpec, SlotAllowsRejectsDscIntoDepthwise) {
  BlockSpec spec;
  spec.name = "dw";
  spec.in_channels = 4;
  spec.nodes.push_back(NodePlan{NodeOp::Conv1x1, 8, 1, true});
  spec.nodes.push_back(NodePlan{NodeOp::DwConv3x3, 8, 1, true});
  spec.nodes.push_back(NodePlan{NodeOp::Conv1x1, 4, 1, true});
  EXPECT_FALSE(spec.slot_allows(0, 2, SkipType::DSC));
  EXPECT_TRUE(spec.slot_allows(0, 2, SkipType::ASC));
  EXPECT_TRUE(spec.slot_allows(0, 3, SkipType::DSC));
  EXPECT_FALSE(spec.slot_allows(0, 1, SkipType::ASC));  // not a skip slot
}

TEST(Block, ConstructionRejectsInvalidAdjacency) {
  Rng rng(101);
  BlockSpec spec;
  spec.name = "bad";
  spec.in_channels = 4;
  spec.nodes.push_back(NodePlan{NodeOp::Conv1x1, 8, 1, true});
  spec.nodes.push_back(NodePlan{NodeOp::DwConv3x3, 8, 1, true});
  Adjacency adj(2);
  adj.set(0, 2, SkipType::DSC);  // DSC into depthwise: invalid
  EXPECT_THROW(Block(spec, adj, spiking_cfg(), rng), std::invalid_argument);
}

TEST(Block, DscWidensConvInput) {
  Rng rng(102);
  BlockSpec spec = conv_spec("widen", 8, {8, 8, 8});
  Adjacency adj(3);
  adj.set(0, 2, SkipType::DSC);
  Block block(spec, adj, spiking_cfg(), rng);
  // Node 2's conv input = main 8 + |subset of 8 at fraction 0.5| = 12.
  EXPECT_EQ(block.nodes()[1].used_in_c, 12);
  EXPECT_EQ(block.nodes()[0].used_in_c, 8);
  // Supernet width covers all potential sources even when inactive.
  EXPECT_EQ(block.nodes()[1].supernet_in_c, 12);
  EXPECT_EQ(block.nodes()[2].supernet_in_c, 8 + 4 + 4);  // srcs 0 and 1
}

TEST(Block, AscKeepsConvInputNarrow) {
  Rng rng(103);
  BlockSpec spec = conv_spec("asc", 8, {8, 8});
  Adjacency adj(2);
  adj.set(0, 2, SkipType::ASC);
  Block block(spec, adj, spiking_cfg(), rng);
  EXPECT_EQ(block.nodes()[1].used_in_c, 8);
  // Matching channels and spatial: identity skip, no projection layer.
  ASSERT_EQ(block.skip_edges().size(), 1u);
  EXPECT_EQ(block.skip_edges()[0].proj, nullptr);
}

TEST(Block, AscProjectionCreatedOnMismatch) {
  Rng rng(104);
  BlockSpec spec = conv_spec("ascp", 4, {8, 8}, {2, 1});
  Adjacency adj(2);
  adj.set(0, 2, SkipType::ASC);  // 4ch full-res -> 8ch half-res
  Block block(spec, adj, spiking_cfg(), rng);
  ASSERT_EQ(block.skip_edges().size(), 1u);
  EXPECT_NE(block.skip_edges()[0].proj, nullptr);
}

TEST(Block, ForwardShapes) {
  Rng rng(105);
  BlockSpec spec = conv_spec("fs", 4, {8, 8, 16}, {1, 2, 1});
  Block block(spec, Adjacency::all(3, SkipType::DSC), spiking_cfg(), rng);
  Tensor x = Tensor::randn(Shape{2, 4, 8, 8}, rng);
  Tensor y = block.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 16, 4, 4}));
  EXPECT_EQ(block.output_shape(x.shape()), y.shape());
}

TEST(Block, ForwardBackwardShapesMatch) {
  Rng rng(106);
  BlockSpec spec = conv_spec("fb", 4, {4, 4, 4});
  Adjacency adj(3);
  adj.set(0, 2, SkipType::DSC);
  adj.set(0, 3, SkipType::ASC);
  Block block(spec, adj, spiking_cfg(), rng);
  Tensor x = Tensor::randn(Shape{2, 4, 6, 6}, rng);
  Tensor y = block.forward(x, true);
  Tensor g = Tensor::randn(y.shape(), rng);
  Tensor gx = block.backward(g);
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(Block, BptTwoTimestepsPopInReverse) {
  Rng rng(107);
  BlockSpec spec = conv_spec("bptt", 3, {3, 3});
  Adjacency adj(2);
  adj.set(0, 2, SkipType::ASC);
  Block block(spec, adj, spiking_cfg(), rng);
  Tensor x = Tensor::randn(Shape{1, 3, 5, 5}, rng);
  Tensor y0 = block.forward(x, true);
  Tensor y1 = block.forward(x, true);
  Tensor g = Tensor::randn(y1.shape(), rng);
  EXPECT_NO_THROW(block.backward(g));
  EXPECT_NO_THROW(block.backward(g));
  block.reset_state();
}

TEST(Block, ParametersIncludeProjections) {
  Rng rng(108);
  BlockSpec spec = conv_spec("params", 4, {8, 8}, {2, 1});
  Adjacency plain_adj(2);
  Block plain(spec, plain_adj, spiking_cfg(), rng);
  Adjacency skip_adj(2);
  skip_adj.set(0, 2, SkipType::ASC);
  Block skipped(spec, skip_adj, spiking_cfg(), rng);
  EXPECT_GT(skipped.parameters().size(), plain.parameters().size());
}

TEST(Block, DscAcrossStrideHandlesOddSpatialSizes) {
  // Regression: with odd feature maps, stride-2 convs produce ceil(H/2)
  // while a floor-mode pool on the skip path produced floor(H/2), making
  // the DSC concat shapes disagree (heap corruption in release builds).
  Rng rng(150);
  BlockSpec spec = conv_spec("odd", 4, {4, 4}, {2, 1});
  Adjacency adj(2);
  adj.set(0, 2, SkipType::DSC);
  Block block(spec, adj, spiking_cfg(), rng);
  for (std::int64_t hw : {3, 5, 7, 9, 12, 13}) {
    Tensor x = Tensor::randn(Shape{1, 4, hw, hw}, rng);
    Tensor y = block.forward(x, true);
    EXPECT_EQ(y.shape(), block.output_shape(x.shape())) << "hw=" << hw;
    Tensor g = Tensor::randn(y.shape(), rng);
    Tensor gx = block.backward(g);
    EXPECT_EQ(gx.shape(), x.shape()) << "hw=" << hw;
    block.reset_state();
  }
}

TEST(Block, OutputShapeUsesCeilDivision) {
  Rng rng(151);
  BlockSpec spec = conv_spec("ceil", 2, {4, 4}, {2, 1});
  Block block(spec, Adjacency::chain(2), spiking_cfg(), rng);
  // 3x3/s2/p1 conv maps 5 -> 3, not floor(5/2) = 2.
  EXPECT_EQ(block.output_shape(Shape{1, 2, 5, 5}), (Shape{1, 4, 3, 3}));
  Tensor x = Tensor::randn(Shape{1, 2, 5, 5}, rng);
  EXPECT_EQ(block.forward(x, false).shape(), (Shape{1, 4, 3, 3}));
}

TEST(Block, DscIncreasesMacs) {
  Rng rng(109);
  BlockSpec spec = conv_spec("macs", 8, {8, 8, 8});
  Block chain(spec, Adjacency::chain(3), spiking_cfg(), rng);
  Block dense(spec, Adjacency::all(3, SkipType::DSC), spiking_cfg(), rng);
  const Shape in{1, 8, 8, 8};
  EXPECT_GT(dense.macs(in), chain.macs(in));
}

TEST(Block, AscMacsOnlyGrowViaProjections) {
  Rng rng(110);
  BlockSpec spec = conv_spec("macs2", 8, {8, 8, 8});
  Block chain(spec, Adjacency::chain(3), spiking_cfg(), rng);
  Block asc(spec, Adjacency::all(3, SkipType::ASC), spiking_cfg(), rng);
  const Shape in{1, 8, 8, 8};
  // Equal widths, stride 1: identity ASC edges add zero MACs.
  EXPECT_EQ(asc.macs(in), chain.macs(in));
}

TEST(Block, SkipChangesOutput) {
  // Analog mode so the comparison is on continuous values (a spiking block
  // can legitimately emit identical all-zero outputs on a weak input).
  Rng rng(111);
  BlockSpec spec = conv_spec("diff", 4, {4, 4});
  BlockConfig cfg;
  cfg.mode = NeuronMode::Analog;
  cfg.max_timesteps = 1;
  Block chain(spec, Adjacency::chain(2), cfg, rng);
  Rng rng2(111);  // same init
  Adjacency adj(2);
  adj.set(0, 2, SkipType::ASC);
  Block skipped(spec, adj, cfg, rng2);
  Rng xrng(7);
  Tensor x = Tensor::randn(Shape{1, 4, 5, 5}, xrng);
  Tensor y1 = chain.forward(x, false);
  Tensor y2 = skipped.forward(x, false);
  EXPECT_GT(Tensor::max_abs_diff(y1, y2), 0.f);
}

// --- network ----------------------------------------------------------------

Network tiny_network(Rng& rng, const Adjacency& adj) {
  Network net;
  net.add_layer(std::make_unique<Conv2d>(2, 4, 3, 1, 1, false, rng, "stem"));
  BlockSpec spec = conv_spec("nb", 4, {4, 4});
  BlockConfig bc = spiking_cfg();
  net.add_block(std::make_unique<Block>(spec, adj, bc, rng));
  net.add_layer(std::make_unique<GlobalAvgPool2d>());
  net.add_layer(std::make_unique<Linear>(4, 3, true, rng, "head"));
  return net;
}

TEST(Network, ForwardProducesLogits) {
  Rng rng(112);
  Network net = tiny_network(rng, Adjacency::chain(2));
  Tensor x = Tensor::randn(Shape{2, 2, 6, 6}, rng);
  Tensor y = net.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 3}));
}

TEST(Network, BackwardReturnsInputGrad) {
  Rng rng(113);
  Network net = tiny_network(rng, Adjacency::chain(2));
  Tensor x = Tensor::randn(Shape{1, 2, 6, 6}, rng);
  net.forward(x, true);
  Tensor g = Tensor::randn(Shape{1, 3}, rng);
  Tensor gx = net.backward(g);
  EXPECT_EQ(gx.shape(), x.shape());
  net.reset_state();
}

TEST(Network, BlocksAreExposedInOrder) {
  Rng rng(114);
  Network net = tiny_network(rng, Adjacency::chain(2));
  ASSERT_EQ(net.blocks().size(), 1u);
  EXPECT_EQ(net.blocks()[0]->name(), "nb");
}

TEST(Network, ParameterCountPositive) {
  Rng rng(115);
  Network net = tiny_network(rng, Adjacency::chain(2));
  EXPECT_GT(net.parameter_count(), 0u);
}

TEST(Network, RecorderSeesSpikes) {
  Rng rng(116);
  Network net = tiny_network(rng, Adjacency::chain(2));
  FiringRateRecorder rec;
  net.set_recorder(&rec);
  Tensor x = Tensor::randn(Shape{2, 2, 6, 6}, rng, 1.f, 1.f);
  net.forward(x, false);
  EXPECT_GT(rec.total_neuron_steps(), 0.0);
  net.set_recorder(nullptr);
}

TEST(Network, OutputShapeWalksStages) {
  Rng rng(117);
  Network net = tiny_network(rng, Adjacency::chain(2));
  EXPECT_EQ(net.output_shape(Shape{5, 2, 6, 6}), (Shape{5, 3}));
}

TEST(MacCounter, TotalsAndPerBlock) {
  Rng rng(118);
  Network net = tiny_network(rng, Adjacency::chain(2));
  const MacReport report = count_macs(net, Shape{1, 2, 6, 6});
  EXPECT_GT(report.total, 0);
  ASSERT_EQ(report.per_block.size(), 1u);
  EXPECT_GT(report.per_block.at("nb"), 0);
  EXPECT_LT(report.per_block.at("nb"), report.total);
}

TEST(MacCounter, EffectiveSnnOps) {
  EXPECT_DOUBLE_EQ(effective_snn_ops(1000, 0.1, 8), 800.0);
  EXPECT_DOUBLE_EQ(effective_snn_ops(1000, 0.0, 8), 0.0);
}

}  // namespace
}  // namespace snnskip
