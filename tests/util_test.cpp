// Unit tests for src/util: RNG determinism and statistics, logging level
// parsing, CSV escaping, CLI parsing, duration formatting.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "util/cli.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace snnskip {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng rng(15);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, UniformIntRange) {
  Rng rng(19);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(10ULL);
    EXPECT_LT(v, 10ULL);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values reachable
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(21);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(std::int64_t{-5}, std::int64_t{5});
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(42);
  Rng c0 = parent.split(0);
  Rng c1 = parent.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c0.next() == c1.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(42), b(42);
  Rng ca = a.split(7), cb = b.split(7);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(ca.next(), cb.next());
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<std::size_t> v(50);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = i;
  auto orig = v;
  rng.shuffle(v);
  std::set<std::size_t> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), orig.size());
  EXPECT_NE(v, orig);  // overwhelmingly likely for n=50
}

TEST(Logging, ParseLevels) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::Trace);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::Info);
}

TEST(Logging, SetAndGetLevel) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  set_log_level(saved);
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "csv_test1.csv";
  {
    CsvWriter w(path, {"a", "b"});
    ASSERT_TRUE(w.ok());
    w.row({"1", "2"});
    w.row({"x", "y"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::remove(path.c_str());
}

TEST(Csv, EscapesSpecialCharacters) {
  const std::string path = testing::TempDir() + "csv_test2.csv";
  {
    CsvWriter w(path, {"f"});
    w.row({"has,comma"});
    w.row({"has\"quote"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  std::getline(in, line);
  EXPECT_EQ(line, "\"has,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "\"has\"\"quote\"");
  std::remove(path.c_str());
}

TEST(Csv, NumFormatting) {
  EXPECT_EQ(CsvWriter::num(1.5), "1.5");
  EXPECT_EQ(CsvWriter::num(std::size_t{42}), "42");
}

TEST(Cli, ParsesSpaceAndEqualsForms) {
  const char* argv[] = {"prog", "--alpha", "3", "--beta=0.5", "--flag"};
  CliArgs args(5, const_cast<char**>(argv));
  EXPECT_TRUE(args.has("alpha"));
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(args.get_double("beta", 0.0), 0.5);
  EXPECT_TRUE(args.has("flag"));
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.get_int("missing", 9), 9);
}

TEST(Cli, U64Parsing) {
  const char* argv[] = {"prog", "--seed=18446744073709551615"};
  CliArgs args(2, const_cast<char**>(argv));
  EXPECT_EQ(args.get_u64("seed", 0), 18446744073709551615ULL);
}

TEST(Timer, FormatDuration) {
  EXPECT_EQ(format_duration(0.0000005), "0.5 us");
  EXPECT_EQ(format_duration(0.002), "2.0 ms");
  EXPECT_EQ(format_duration(1.5), "1.50 s");
  EXPECT_EQ(format_duration(600.0), "10.0 min");
}

TEST(Timer, ElapsedIsMonotonic) {
  Timer t;
  const double a = t.elapsed_s();
  const double b = t.elapsed_s();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), a);
}

}  // namespace
}  // namespace snnskip
