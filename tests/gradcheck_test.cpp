// Finite-difference gradient checks for every hand-written backward pass:
// conv (stride/pad sweep), depthwise conv, linear, batch-norm, pooling, and
// whole Blocks with DSC / ASC / mixed adjacencies (the paper's two join
// types differentiated end to end).

#include <gtest/gtest.h>

#include "gradcheck_common.h"
#include "graph/block.h"
#include "nn/activations.h"
#include "nn/batchnorm_tt.h"
#include "nn/conv2d.h"
#include "nn/depthwise_conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "tensor/spike_kernels.h"

namespace snnskip {
namespace {

using testutil::check_gradients;

struct ConvCase {
  std::int64_t in_c, out_c, kernel, stride, pad, h, w;
  bool bias;
};

class ConvGradCheck : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradCheck, MatchesFiniteDifferences) {
  const ConvCase c = GetParam();
  Rng rng(51);
  Conv2d conv(c.in_c, c.out_c, c.kernel, c.stride, c.pad, c.bias, rng);
  Tensor x = Tensor::randn(Shape{2, c.in_c, c.h, c.w}, rng);
  check_gradients(conv, x, 52);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGradCheck,
    ::testing::Values(ConvCase{2, 3, 3, 1, 1, 5, 5, true},
                      ConvCase{1, 2, 3, 2, 1, 6, 6, false},
                      ConvCase{3, 2, 1, 1, 0, 4, 4, true},
                      ConvCase{2, 4, 1, 2, 0, 4, 4, false},
                      ConvCase{4, 2, 3, 1, 1, 3, 3, false}));

// --- sparse (event-driven) paths -------------------------------------------
// Bernoulli inputs with the density threshold forced to 1.0 keep every
// layer on the sparse kernels (forward AND the ISSUE 4 sparse-ctx dW)
// through the whole finite-difference sweep.

struct ForceSparse {
  bool enabled = SparseExec::enabled();
  float threshold = SparseExec::threshold();
  bool bwd = SparseExec::bwd_enabled();
  ForceSparse() {
    SparseExec::set_enabled(true);
    SparseExec::set_bwd_enabled(true);
    SparseExec::set_threshold(1.f);
  }
  ~ForceSparse() {
    SparseExec::set_enabled(enabled);
    SparseExec::set_threshold(threshold);
    SparseExec::set_bwd_enabled(bwd);
  }
};

TEST(ConvGradCheckSparse, SpikeInputEventPath) {
  ForceSparse force;
  Rng rng(141);
  Conv2d conv(2, 3, 3, 1, 1, true, rng);
  Tensor x = Tensor::bernoulli(Shape{2, 2, 5, 5}, rng, 0.2f);
  check_gradients(conv, x, 142);
}

TEST(ConvGradCheckSparse, Stride2SpikeInput) {
  ForceSparse force;
  Rng rng(143);
  Conv2d conv(2, 3, 3, 2, 1, false, rng);
  Tensor x = Tensor::bernoulli(Shape{1, 2, 6, 6}, rng, 0.2f);
  check_gradients(conv, x, 144);
}

TEST(LinearGradCheckSparse, SpikeInputEventPath) {
  ForceSparse force;
  Rng rng(145);
  Linear lin(8, 4, true, rng);
  Tensor x = Tensor::bernoulli(Shape{3, 8}, rng, 0.2f);
  check_gradients(lin, x, 146);
}

TEST(DepthwiseConvGradCheckSparse, SpikeInputEventPath) {
  ForceSparse force;
  Rng rng(147);
  DepthwiseConv2d conv(3, 3, 1, 1, true, rng);
  Tensor x = Tensor::bernoulli(Shape{2, 3, 5, 5}, rng, 0.2f);
  check_gradients(conv, x, 148);
}

TEST(DepthwiseConvGradCheck, Stride1) {
  Rng rng(53);
  DepthwiseConv2d conv(3, 3, 1, 1, true, rng);
  Tensor x = Tensor::randn(Shape{2, 3, 5, 5}, rng);
  check_gradients(conv, x, 54);
}

TEST(DepthwiseConvGradCheck, Stride2NoBias) {
  Rng rng(55);
  DepthwiseConv2d conv(2, 3, 2, 1, false, rng);
  Tensor x = Tensor::randn(Shape{1, 2, 6, 6}, rng);
  check_gradients(conv, x, 56);
}

TEST(LinearGradCheck, WithBias) {
  Rng rng(57);
  Linear lin(6, 4, true, rng);
  Tensor x = Tensor::randn(Shape{3, 6}, rng);
  check_gradients(lin, x, 58);
}

TEST(LinearGradCheck, NoBias) {
  Rng rng(59);
  Linear lin(5, 2, false, rng);
  Tensor x = Tensor::randn(Shape{4, 5}, rng);
  check_gradients(lin, x, 60);
}

TEST(BatchNormGradCheck, SingleTimestep) {
  Rng rng(61);
  BatchNormTT bn(3, 1);
  Tensor x = Tensor::randn(Shape{4, 3, 3, 3}, rng, 0.5f, 2.f);
  check_gradients(bn, x, 62, 1e-2f, 4e-2f);
}

TEST(AvgPoolGradCheck, TwoByTwo) {
  Rng rng(63);
  AvgPool2d pool(2, 2);
  Tensor x = Tensor::randn(Shape{2, 3, 4, 4}, rng);
  check_gradients(pool, x, 64);
}

TEST(AvgPoolGradCheck, CeilModePartialWindows) {
  Rng rng(631);
  AvgPool2d pool(2, 2, /*ceil_mode=*/true);
  Tensor x = Tensor::randn(Shape{2, 2, 5, 5}, rng);  // odd: partial windows
  check_gradients(pool, x, 632);
}

TEST(GlobalAvgPoolGradCheck, Basic) {
  Rng rng(65);
  GlobalAvgPool2d pool;
  Tensor x = Tensor::randn(Shape{2, 4, 3, 3}, rng);
  check_gradients(pool, x, 66);
}

TEST(MaxPoolGradCheck, AwayFromTies) {
  // Max pooling is non-differentiable at ties; use well-separated values.
  Rng rng(67);
  MaxPool2d pool(2, 2);
  Tensor x(Shape{1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) {
    x[static_cast<std::size_t>(i)] =
        static_cast<float>(i) * 1.7f + static_cast<float>(rng.uniform());
  }
  check_gradients(pool, x, 68, 1e-3f);
}

TEST(FlattenGradCheck, PureReshape) {
  Rng rng(69);
  Flatten fl;
  Tensor x = Tensor::randn(Shape{2, 2, 3, 3}, rng);
  check_gradients(fl, x, 70);
}

TEST(ReluGradCheck, AwayFromKink) {
  Rng rng(71);
  ReLU relu;
  // Keep every entry at least 0.2 away from zero (FD step is 1e-2).
  Tensor x = Tensor::randn(Shape{2, 3, 4, 4}, rng);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    float& v = x[static_cast<std::size_t>(i)];
    if (std::abs(v) < 0.2f) v = v >= 0 ? 0.2f : -0.2f;
  }
  check_gradients(relu, x, 72);
}

// --- whole blocks ---------------------------------------------------------
// Analog blocks with linear nodes (no neuron kink, no spike threshold):
// this isolates the DAG wiring — concat segments, channel gathers, ASC
// projections, strided pooling on skip paths — as one differentiable unit.

BlockSpec linear_spec(std::int64_t in_c, std::vector<NodePlan> nodes,
                      const std::string& name) {
  BlockSpec spec;
  spec.name = name;
  spec.in_channels = in_c;
  for (auto& n : nodes) n.spiking = false;  // Identity neurons
  spec.nodes = std::move(nodes);
  return spec;
}

BlockConfig analog_cfg() {
  BlockConfig cfg;
  cfg.mode = NeuronMode::Analog;
  cfg.max_timesteps = 1;
  cfg.dsc_fraction = 0.5;
  return cfg;
}

TEST(BlockGradCheck, ChainNoSkips) {
  Rng rng(81);
  BlockSpec spec = linear_spec(2,
                               {NodePlan{NodeOp::Conv3x3, 3, 1, true},
                                NodePlan{NodeOp::Conv3x3, 3, 1, true}},
                               "gc_chain");
  Block block(spec, Adjacency::chain(2), analog_cfg(), rng);
  Tensor x = Tensor::randn(Shape{2, 2, 4, 4}, rng);
  check_gradients(block, x, 82, 1e-2f, 4e-2f);
}

TEST(BlockGradCheck, AscIdentitySkip) {
  Rng rng(83);
  BlockSpec spec = linear_spec(3,
                               {NodePlan{NodeOp::Conv3x3, 3, 1, true},
                                NodePlan{NodeOp::Conv3x3, 3, 1, true}},
                               "gc_asc");
  Adjacency adj(2);
  adj.set(0, 2, SkipType::ASC);  // channels match: identity skip
  Block block(spec, adj, analog_cfg(), rng);
  Tensor x = Tensor::randn(Shape{2, 3, 4, 4}, rng);
  check_gradients(block, x, 84, 1e-2f, 4e-2f);
}

TEST(BlockGradCheck, AscProjectedSkip) {
  Rng rng(85);
  BlockSpec spec = linear_spec(2,
                               {NodePlan{NodeOp::Conv3x3, 4, 2, true},
                                NodePlan{NodeOp::Conv3x3, 4, 1, true}},
                               "gc_asc_proj");
  Adjacency adj(2);
  adj.set(0, 2, SkipType::ASC);  // channel AND spatial mismatch -> 1x1 proj
  Block block(spec, adj, analog_cfg(), rng);
  Tensor x = Tensor::randn(Shape{2, 2, 6, 6}, rng);
  check_gradients(block, x, 86, 1e-2f, 4e-2f);
}

TEST(BlockGradCheck, DscSkip) {
  Rng rng(87);
  BlockSpec spec = linear_spec(3,
                               {NodePlan{NodeOp::Conv3x3, 3, 1, true},
                                NodePlan{NodeOp::Conv3x3, 3, 1, true},
                                NodePlan{NodeOp::Conv3x3, 3, 1, true}},
                               "gc_dsc");
  Adjacency adj(3);
  adj.set(0, 2, SkipType::DSC);
  adj.set(1, 3, SkipType::DSC);
  Block block(spec, adj, analog_cfg(), rng);
  Tensor x = Tensor::randn(Shape{2, 3, 4, 4}, rng);
  check_gradients(block, x, 88, 1e-2f, 4e-2f);
}

TEST(BlockGradCheck, DscAcrossStride) {
  Rng rng(89);
  BlockSpec spec = linear_spec(2,
                               {NodePlan{NodeOp::Conv3x3, 4, 2, true},
                                NodePlan{NodeOp::Conv3x3, 4, 1, true},
                                NodePlan{NodeOp::Conv3x3, 4, 1, true}},
                               "gc_dsc_stride");
  Adjacency adj(3);
  adj.set(0, 3, SkipType::DSC);  // source is pre-stride: pooled skip path
  Block block(spec, adj, analog_cfg(), rng);
  Tensor x = Tensor::randn(Shape{1, 2, 6, 6}, rng);
  check_gradients(block, x, 90, 1e-2f, 4e-2f);
}

TEST(BlockGradCheck, MixedDscAndAsc) {
  Rng rng(91);
  BlockSpec spec = linear_spec(3,
                               {NodePlan{NodeOp::Conv3x3, 3, 1, true},
                                NodePlan{NodeOp::Conv3x3, 3, 1, true},
                                NodePlan{NodeOp::Conv3x3, 3, 1, true},
                                NodePlan{NodeOp::Conv3x3, 3, 1, true}},
                               "gc_mixed");
  Adjacency adj(4);
  adj.set(0, 2, SkipType::DSC);
  adj.set(0, 3, SkipType::ASC);
  adj.set(1, 4, SkipType::DSC);
  adj.set(2, 4, SkipType::ASC);
  Block block(spec, adj, analog_cfg(), rng);
  Tensor x = Tensor::randn(Shape{2, 3, 4, 4}, rng);
  check_gradients(block, x, 92, 1e-2f, 4e-2f);
}

TEST(BlockGradCheck, InvertedResidualShape) {
  // MobileNetV2-style node chain with the classic (0,3) ASC edge.
  Rng rng(93);
  BlockSpec spec = linear_spec(3,
                               {NodePlan{NodeOp::Conv1x1, 6, 1, true},
                                NodePlan{NodeOp::DwConv3x3, 6, 1, true},
                                NodePlan{NodeOp::Conv1x1, 3, 1, true}},
                               "gc_ir");
  Adjacency adj(3);
  adj.set(0, 3, SkipType::ASC);
  Block block(spec, adj, analog_cfg(), rng);
  Tensor x = Tensor::randn(Shape{2, 3, 4, 4}, rng);
  check_gradients(block, x, 94, 1e-2f, 4e-2f);
}

}  // namespace
}  // namespace snnskip
