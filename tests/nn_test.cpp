// Behavioral tests for the layer library: shapes, known-value forwards,
// batch-norm statistics, loss gradients, optimizers.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"
#include "nn/batchnorm_tt.h"
#include "nn/conv2d.h"
#include "nn/depthwise_conv2d.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/pooling.h"
#include "tensor/spike_kernels.h"
#include "tensor/workspace.h"

namespace snnskip {
namespace {

// Restores the sparse-dispatch configuration on scope exit so tests can
// force either path without leaking state into later tests.
class SparseExecGuard {
 public:
  SparseExecGuard()
      : enabled_(SparseExec::enabled()), threshold_(SparseExec::threshold()) {}
  ~SparseExecGuard() {
    SparseExec::set_enabled(enabled_);
    SparseExec::set_threshold(threshold_);
  }

 private:
  bool enabled_;
  float threshold_;
};

TEST(Conv2d, OutputShape) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, 2, 1, false, rng);
  EXPECT_EQ(conv.output_shape(Shape{4, 3, 16, 16}), (Shape{4, 8, 8, 8}));
}

TEST(Conv2d, MacsFormula) {
  Rng rng(2);
  Conv2d conv(2, 4, 3, 1, 1, false, rng);
  // N * out_c * (in_c*k*k) * (out_h*out_w) = 1*4*18*16
  EXPECT_EQ(conv.macs(Shape{1, 2, 4, 4}), 4 * 18 * 16);
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  Rng rng(3);
  Conv2d conv(1, 1, 1, 1, 0, false, rng);
  conv.weight().value.fill(1.f);
  Tensor x = Tensor::randn(Shape{1, 1, 3, 3}, rng);
  Tensor y = conv.forward(x, false);
  EXPECT_LT(Tensor::max_abs_diff(x, y), 1e-6f);
}

TEST(Conv2d, KnownAveragingKernel) {
  Rng rng(4);
  Conv2d conv(1, 1, 3, 1, 0, false, rng);
  conv.weight().value.fill(1.f / 9.f);
  Tensor x = Tensor::full(Shape{1, 1, 3, 3}, 2.f);
  Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_NEAR(y[0], 2.f, 1e-6f);
}

TEST(Conv2d, BiasIsAdded) {
  Rng rng(5);
  Conv2d conv(1, 2, 1, 1, 0, true, rng);
  conv.weight().value.fill(0.f);
  conv.bias().value[0] = 1.5f;
  conv.bias().value[1] = -0.5f;
  Tensor x = Tensor::randn(Shape{1, 1, 2, 2}, rng);
  Tensor y = conv.forward(x, false);
  EXPECT_FLOAT_EQ(y.at({0, 0, 0, 0}), 1.5f);
  EXPECT_FLOAT_EQ(y.at({0, 1, 1, 1}), -0.5f);
}

TEST(Conv2d, EvalForwardSavesNoContext) {
  Rng rng(6);
  Conv2d conv(1, 1, 3, 1, 1, false, rng);
  Tensor x = Tensor::randn(Shape{1, 1, 4, 4}, rng);
  conv.forward(x, /*train=*/false);
  // A backward now would be a bug; reset_state keeps it legal to continue.
  conv.reset_state();
  conv.forward(x, /*train=*/true);
  Tensor g = Tensor::randn(Shape{1, 1, 4, 4}, rng);
  EXPECT_NO_THROW(conv.backward(g));
}

TEST(DepthwiseConv2d, OutputShapeAndMacs) {
  Rng rng(7);
  DepthwiseConv2d conv(4, 3, 2, 1, false, rng);
  EXPECT_EQ(conv.output_shape(Shape{2, 4, 8, 8}), (Shape{2, 4, 4, 4}));
  EXPECT_EQ(conv.macs(Shape{1, 4, 8, 8}), 4 * 9 * 16);
}

TEST(DepthwiseConv2d, ChannelsAreIndependent) {
  Rng rng(8);
  DepthwiseConv2d conv(2, 3, 1, 1, false, rng);
  Tensor x(Shape{1, 2, 3, 3});
  // Only channel 0 is non-zero; output channel 1 must stay zero.
  for (std::int64_t i = 0; i < 9; ++i) x[static_cast<std::size_t>(i)] = 1.f;
  Tensor y = conv.forward(x, false);
  for (std::int64_t i = 0; i < 9; ++i) {
    EXPECT_FLOAT_EQ(y[static_cast<std::size_t>(9 + i)], 0.f);
  }
}

TEST(Linear, KnownForward) {
  Rng rng(9);
  Linear lin(2, 2, true, rng);
  lin.weight().value = Tensor(Shape{2, 2}, std::vector<float>{1, 2, 3, 4});
  lin.bias().value = Tensor(Shape{2}, std::vector<float>{0.5f, -0.5f});
  Tensor x(Shape{1, 2}, std::vector<float>{1.f, 1.f});
  Tensor y = lin.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 3.5f);   // 1+2+0.5
  EXPECT_FLOAT_EQ(y[1], 6.5f);   // 3+4-0.5
}

TEST(Flatten, ShapeRoundTrip) {
  Flatten fl;
  Rng rng(10);
  Tensor x = Tensor::randn(Shape{2, 3, 4, 5}, rng);
  Tensor y = fl.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 60}));
  Tensor gx = fl.backward(y);
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(AvgPool2d, AveragesWindows) {
  AvgPool2d pool(2, 2);
  Tensor x(Shape{1, 1, 2, 2}, std::vector<float>{1, 2, 3, 6});
  Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 3.f);
}

TEST(AvgPool2d, CeilModeRoundsUpAndAveragesPartialWindows) {
  AvgPool2d pool(2, 2, /*ceil_mode=*/true);
  // 3x3 input -> 2x2 output; the edge windows only cover valid elements.
  Tensor x(Shape{1, 1, 3, 3},
           std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_EQ(pool.output_shape(x.shape()), (Shape{1, 1, 2, 2}));
  Tensor y = pool.forward(x, false);
  EXPECT_FLOAT_EQ(y.at({0, 0, 0, 0}), 3.f);    // (1+2+4+5)/4
  EXPECT_FLOAT_EQ(y.at({0, 0, 0, 1}), 4.5f);   // (3+6)/2
  EXPECT_FLOAT_EQ(y.at({0, 0, 1, 0}), 7.5f);   // (7+8)/2
  EXPECT_FLOAT_EQ(y.at({0, 0, 1, 1}), 9.f);    // (9)/1
}

TEST(AvgPool2d, CeilModeMatchesStridedConvArithmetic) {
  // ceil-mode pool output == ceil(H/stride) for kernel == stride.
  AvgPool2d pool(2, 2, true);
  for (std::int64_t h : {2, 3, 4, 5, 7, 12, 13}) {
    const Shape out = pool.output_shape(Shape{1, 1, h, h});
    EXPECT_EQ(out[2], (h + 1) / 2) << "h=" << h;
  }
}

TEST(AvgPool2d, CeilModeBackwardDistributesByWindowSize) {
  AvgPool2d pool(2, 2, true);
  Tensor x = Tensor::full(Shape{1, 1, 3, 3}, 1.f);
  pool.forward(x, true);
  Tensor g = Tensor::full(Shape{1, 1, 2, 2}, 1.f);
  Tensor gx = pool.backward(g);
  // Corner (2,2) window has one element: full gradient lands there.
  EXPECT_FLOAT_EQ(gx.at({0, 0, 2, 2}), 1.f);
  EXPECT_FLOAT_EQ(gx.at({0, 0, 0, 0}), 0.25f);
  // Total gradient is conserved.
  EXPECT_NEAR(gx.sum(), 4.0, 1e-6);
}

TEST(MaxPool2d, TakesMaxima) {
  MaxPool2d pool(2, 2);
  Tensor x(Shape{1, 1, 2, 2}, std::vector<float>{1, 7, 3, 2});
  Tensor y = pool.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 7.f);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  MaxPool2d pool(2, 2);
  Tensor x(Shape{1, 1, 2, 2}, std::vector<float>{1, 7, 3, 2});
  pool.forward(x, true);
  Tensor g = Tensor::full(Shape{1, 1, 1, 1}, 2.f);
  Tensor gx = pool.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.f);
  EXPECT_FLOAT_EQ(gx[1], 2.f);
  EXPECT_FLOAT_EQ(gx[2], 0.f);
}

TEST(GlobalAvgPool2d, CollapsesPlanes) {
  GlobalAvgPool2d gap;
  Tensor x(Shape{1, 2, 2, 2},
           std::vector<float>{1, 2, 3, 4, 10, 10, 10, 10});
  Tensor y = gap.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y[0], 2.5f);
  EXPECT_FLOAT_EQ(y[1], 10.f);
}

TEST(ReLU, ClampsNegatives) {
  ReLU relu;
  Tensor x(Shape{4}, std::vector<float>{-1.f, 0.f, 2.f, -3.f});
  Tensor y = relu.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.f);
  EXPECT_FLOAT_EQ(y[2], 2.f);
  EXPECT_FLOAT_EQ(y[3], 0.f);
}

TEST(BatchNormTT, NormalizesTrainBatch) {
  Rng rng(11);
  BatchNormTT bn(2, 1);
  Tensor x = Tensor::randn(Shape{8, 2, 4, 4}, rng, 3.f, 2.f);
  Tensor y = bn.forward(x, true);
  // Per-channel output should be ~N(0,1) (gamma=1, beta=0 at init).
  for (std::int64_t c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    std::int64_t count = 0;
    for (std::int64_t n = 0; n < 8; ++n) {
      for (std::int64_t i = 0; i < 16; ++i) {
        const float v = y.at({n, c, i / 4, i % 4});
        mean += v;
        ++count;
      }
    }
    mean /= count;
    for (std::int64_t n = 0; n < 8; ++n) {
      for (std::int64_t i = 0; i < 16; ++i) {
        const double d = y.at({n, c, i / 4, i % 4}) - mean;
        var += d * d;
      }
    }
    var /= count;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
  bn.reset_state();
}

TEST(BatchNormTT, PerTimestepParametersAreSeparate) {
  BatchNormTT bn(3, 4);
  // 4 timesteps x (gamma + beta) = 8 parameters of size 3.
  EXPECT_EQ(bn.parameters().size(), 8u);
}

TEST(BatchNormTT, TimestepCounterAdvancesAndResets) {
  Rng rng(12);
  BatchNormTT bn(1, 2);
  Tensor x = Tensor::randn(Shape{4, 1, 2, 2}, rng);
  bn.forward(x, true);   // t=0
  bn.forward(x, true);   // t=1
  bn.forward(x, true);   // t=2 -> clamps to slot 1 without crashing
  bn.reset_state();
  EXPECT_NO_THROW(bn.forward(x, false));  // eval from t=0 again
  bn.reset_state();
}

TEST(BatchNormTT, EvalUsesRunningStats) {
  Rng rng(13);
  BatchNormTT bn(1, 1);
  // Train on shifted data a few times so running stats move.
  for (int i = 0; i < 50; ++i) {
    Tensor x = Tensor::randn(Shape{16, 1, 2, 2}, rng, 5.f, 1.f);
    bn.forward(x, true);
    bn.reset_state();
  }
  Tensor probe = Tensor::full(Shape{1, 1, 2, 2}, 5.f);
  Tensor y = bn.forward(probe, false);
  // A value at the running mean normalizes to ~0.
  EXPECT_NEAR(y[0], 0.f, 0.2f);
}

TEST(CrossEntropy, UniformLogitsGiveLogC) {
  Tensor logits(Shape{2, 4});
  const LossResult r = cross_entropy(logits, {0, 3});
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-5);
}

TEST(CrossEntropy, GradientIsSoftmaxMinusOneHotOverN) {
  Tensor logits(Shape{1, 2}, std::vector<float>{0.f, 0.f});
  const LossResult r = cross_entropy(logits, {1});
  EXPECT_NEAR(r.grad_logits[0], 0.5f, 1e-5);
  EXPECT_NEAR(r.grad_logits[1], -0.5f, 1e-5);
}

TEST(CrossEntropy, CountsCorrectPredictions) {
  Tensor logits(Shape{2, 2}, std::vector<float>{3.f, 0.f, 0.f, 3.f});
  const LossResult r = cross_entropy(logits, {0, 0});
  EXPECT_EQ(r.correct, 1u);
}

TEST(Accuracy, Computes) {
  Tensor logits(Shape{3, 2}, std::vector<float>{1, 0, 0, 1, 1, 0});
  EXPECT_NEAR(accuracy(logits, {0, 1, 1}), 2.0 / 3.0, 1e-9);
}

TEST(Sgd, PlainStepMovesAgainstGradient) {
  Parameter p("w", Tensor::full(Shape{1}, 1.f));
  p.grad[0] = 2.f;
  Sgd opt({&p}, 0.1f, 0.f, 0.f);
  opt.step();
  EXPECT_NEAR(p.value[0], 0.8f, 1e-6f);
}

TEST(Sgd, MomentumAccumulates) {
  Parameter p("w", Tensor::full(Shape{1}, 0.f));
  Sgd opt({&p}, 1.f, 0.5f, 0.f);
  p.grad[0] = 1.f;
  opt.step();  // v=1, w=-1
  EXPECT_NEAR(p.value[0], -1.f, 1e-6f);
  p.grad[0] = 1.f;
  opt.step();  // v=1.5, w=-2.5
  EXPECT_NEAR(p.value[0], -2.5f, 1e-6f);
}

TEST(Sgd, WeightDecayShrinks) {
  Parameter p("w", Tensor::full(Shape{1}, 10.f));
  p.grad[0] = 0.f;
  Sgd opt({&p}, 0.1f, 0.f, 0.5f);
  opt.step();
  EXPECT_NEAR(p.value[0], 10.f - 0.1f * 0.5f * 10.f, 1e-5f);
}

TEST(Adam, FirstStepIsLrSized) {
  // With bias correction the first Adam step is ~lr * sign(grad).
  Parameter p("w", Tensor::full(Shape{1}, 0.f));
  p.grad[0] = 3.f;
  Adam opt({&p}, 0.01f);
  opt.step();
  EXPECT_NEAR(p.value[0], -0.01f, 1e-4f);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 — gradient 2(w-3).
  Parameter p("w", Tensor::full(Shape{1}, 0.f));
  Adam opt({&p}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    p.zero_grad();
    p.grad[0] = 2.f * (p.value[0] - 3.f);
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 3.f, 0.05f);
}

TEST(Optimizer, ZeroGradClears) {
  Parameter p("w", Tensor::full(Shape{3}, 1.f));
  p.grad.fill(7.f);
  Sgd opt({&p}, 0.1f);
  opt.zero_grad();
  EXPECT_FLOAT_EQ(p.grad[0], 0.f);
  EXPECT_FLOAT_EQ(p.grad[2], 0.f);
}

// --- sparse-vs-dense path equivalence (ISSUE 1) --------------------------
// Random binary spike tensors across the density sweep must produce the
// same forward outputs whether the event-driven path or the dense GEMM
// path runs. The sweep forces the sparse dispatch with threshold=1.0 and
// compares against the same layer with the dispatch disabled.

class SparsePathDensity : public ::testing::TestWithParam<double> {};

TEST_P(SparsePathDensity, Conv2dMatchesDense) {
  const float density = static_cast<float>(GetParam());
  SparseExecGuard guard;
  Rng rng(901);
  Conv2d conv(4, 6, 3, 1, 1, true, rng);
  Tensor x = Tensor::bernoulli(Shape{2, 4, 7, 7}, rng, density);

  SparseExec::set_enabled(true);
  SparseExec::set_threshold(1.f);
  Tensor sparse = conv.forward(x, false);
  SparseExec::set_enabled(false);
  Tensor dense = conv.forward(x, false);
  EXPECT_LT(Tensor::max_abs_diff(sparse, dense), 1e-5f);
}

TEST_P(SparsePathDensity, LinearMatchesDense) {
  const float density = static_cast<float>(GetParam());
  SparseExecGuard guard;
  Rng rng(902);
  Linear lin(12, 9, true, rng);
  Tensor x = Tensor::bernoulli(Shape{5, 12}, rng, density);

  SparseExec::set_enabled(true);
  SparseExec::set_threshold(1.f);
  Tensor sparse = lin.forward(x, false);
  SparseExec::set_enabled(false);
  Tensor dense = lin.forward(x, false);
  EXPECT_LT(Tensor::max_abs_diff(sparse, dense), 1e-5f);
}

TEST_P(SparsePathDensity, DepthwiseMatchesDense) {
  const float density = static_cast<float>(GetParam());
  SparseExecGuard guard;
  Rng rng(903);
  DepthwiseConv2d conv(5, 3, 2, 1, true, rng);
  Tensor x = Tensor::bernoulli(Shape{2, 5, 8, 8}, rng, density);

  SparseExec::set_enabled(true);
  SparseExec::set_threshold(1.f);
  Tensor sparse = conv.forward(x, false);
  SparseExec::set_enabled(false);
  Tensor dense = conv.forward(x, false);
  EXPECT_LT(Tensor::max_abs_diff(sparse, dense), 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(DensitySweep, SparsePathDensity,
                         ::testing::Values(0.0, 0.05, 0.5, 1.0));

TEST(SparsePath, Conv2dTrainBackwardMatchesDensePath) {
  // The sparse forward must not change training: identical weights and
  // inputs give identical gradients whichever forward path ran, because
  // backward recomputes columns from the saved input either way.
  SparseExecGuard guard;
  Rng rng1(904), rng2(904);
  Conv2d conv_s(3, 4, 3, 1, 1, true, rng1);
  Conv2d conv_d(3, 4, 3, 1, 1, true, rng2);
  Rng data_rng(77);
  Tensor x = Tensor::bernoulli(Shape{2, 3, 6, 6}, data_rng, 0.1f);
  Tensor go = Tensor::randn(Shape{2, 4, 6, 6}, data_rng);

  SparseExec::set_enabled(true);
  SparseExec::set_threshold(1.f);
  (void)conv_s.forward(x, true);
  Tensor gi_s = conv_s.backward(go);

  SparseExec::set_enabled(false);
  (void)conv_d.forward(x, true);
  Tensor gi_d = conv_d.backward(go);

  EXPECT_LT(Tensor::max_abs_diff(gi_s, gi_d), 1e-6f);
  EXPECT_LT(Tensor::max_abs_diff(conv_s.weight().grad, conv_d.weight().grad),
            1e-6f);
  EXPECT_LT(Tensor::max_abs_diff(conv_s.bias().grad, conv_d.bias().grad),
            1e-6f);
}

TEST(SparsePath, DispatchRespectsThreshold) {
  SparseExecGuard guard;
  SparseExec::set_enabled(true);
  SparseExec::set_threshold(0.25f);
  SparseExec::reset_stats();
  Rng rng(906);
  Conv2d conv(4, 4, 3, 1, 1, false, rng);
  Tensor sparse_x = Tensor::bernoulli(Shape{1, 4, 8, 8}, rng, 0.05f);
  Tensor dense_x = Tensor::full(Shape{1, 4, 8, 8}, 1.f);
  (void)conv.forward(sparse_x, false);
  (void)conv.forward(dense_x, false);
  const SparseExec::Stats st = SparseExec::stats();
  EXPECT_EQ(st.sparse_calls, 1u);
  EXPECT_EQ(st.dense_calls, 1u);
  // Achieved density pools both inputs — same nnz/elements definition as
  // FiringRateRecorder::average_density().
  EXPECT_GT(st.density(), 0.4);
  EXPECT_LT(st.density(), 0.6);
}

TEST(SparsePath, EvalSteadyStateStopsAllocating) {
  // The arena high-water mark must stabilize after the first timestep:
  // repeated eval-mode forwards perform no further heap allocations for
  // scratch (the im2col buffer used to be a fresh Tensor per call).
  SparseExecGuard guard;
  SparseExec::set_enabled(false);  // dense path exercises the cols buffer
  Rng rng(907);
  Conv2d conv(8, 8, 3, 1, 1, false, rng);
  Tensor x = Tensor::randn(Shape{2, 8, 10, 10}, rng);
  Workspace& ws = Workspace::tls();
  (void)conv.forward(x, false);
  (void)conv.forward(x, false);  // possible block coalesce
  const std::size_t allocs = ws.heap_allocs();
  const std::size_t hw = ws.high_water();
  for (int t = 0; t < 10; ++t) (void)conv.forward(x, false);
  EXPECT_EQ(ws.heap_allocs(), allocs);
  EXPECT_EQ(ws.high_water(), hw);
}

}  // namespace
}  // namespace snnskip
