// Tests for the serving subsystem (ISSUE 7): ModelRegistry LRU
// eviction/reload round-trips, manifest parsing, Server correctness
// against direct Engine execution, dynamic-batching deadlines, admission
// control under the serve.queue_full fault site, graceful drain, the
// per-model telemetry counter keying that keeps concurrent engines'
// stats from bleeding into each other, and the wire protocol's framing
// invariants (round-trip, overflow-proof geometry validation, header
// checksum vs torn-payload split).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/inject.h"
#include "infer/engine.h"
#include "serve/model_registry.h"
#include "serve/options.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "telemetry/telemetry.h"
#include "train/checkpoint.h"
#include "util/rng.h"
#include "util/timer.h"

namespace snnskip {
namespace {

using serve::LoadedModel;
using serve::ModelHandle;
using serve::ModelRegistry;
using serve::ModelSpec;
using serve::ServeOptions;
using serve::Server;

ModelSpec tiny_spec(const std::string& name, std::int64_t batch = 2) {
  ModelSpec spec;
  spec.name = name;
  spec.family = "single_block";
  spec.config.width = 8;
  spec.config.in_channels = 2;
  spec.config.num_classes = 10;
  spec.config.max_timesteps = 4;
  spec.config.seed = 7;
  // Low threshold keeps the tiny net firing all the way to the head, so
  // output comparisons are non-vacuous (theta 1.0 silences it entirely).
  spec.config.lif.threshold = 0.25f;
  spec.warm_bn_steps = 4;
  spec.batch = batch;
  return spec;
}

std::vector<Tensor> request_frames(const Shape& frame, std::int64_t steps,
                                   std::uint64_t seed, float p = 0.3f) {
  Rng rng(seed);
  std::vector<Tensor> frames;
  for (std::int64_t t = 0; t < steps; ++t) {
    frames.push_back(Tensor::bernoulli(frame, rng, p));
  }
  return frames;
}

// Rate-accumulated head output for one request computed directly on a
// leased engine (slot 0; remaining batch slots stay zero, which per-image
// op independence guarantees cannot perturb slot 0).
Tensor direct_reference(const ModelHandle& model,
                        const std::vector<Tensor>& frames) {
  const infer::Plan& plan = *model->plan();
  const std::int64_t n = plan.input_shape[0];
  const std::int64_t classes = plan.output_shape.numel() / n;
  LoadedModel::Lease lease = model->lease();
  lease->reset();
  Tensor x(plan.input_shape);
  Tensor out;
  Tensor acc(Shape{classes});
  const std::int64_t img = x.numel() / n;
  for (const Tensor& f : frames) {
    x.fill(0.f);
    std::copy(f.data(), f.data() + img, x.data());
    lease->step(x, &out);
    for (std::int64_t c = 0; c < classes; ++c) {
      acc.data()[c] += out.data()[c];
    }
  }
  return acc;
}

// --- ModelRegistry ----------------------------------------------------------

TEST(ModelRegistryTest, CacheHitsRefreshAndEvictionIsLru) {
  ModelRegistry reg(2);
  reg.load(tiny_spec("a"));
  reg.load(tiny_spec("b"));
  EXPECT_EQ(reg.cold_loads(), 2);
  EXPECT_EQ(reg.resident(), 2u);

  reg.load(tiny_spec("a"));          // refresh a => b becomes LRU
  reg.load(tiny_spec("c"));          // evicts b
  EXPECT_EQ(reg.cold_loads(), 3);
  EXPECT_TRUE(reg.is_resident("a"));
  EXPECT_FALSE(reg.is_resident("b"));
  EXPECT_TRUE(reg.is_resident("c"));

  reg.load(tiny_spec("b"));  // cold again
  EXPECT_EQ(reg.cold_loads(), 4);
}

TEST(ModelRegistryTest, EvictReloadRoundTripIsBitwiseReproducible) {
  // An evicted model rebuilt from its spec (same seed, same fixed BN
  // warmup stream) must produce identical outputs — LRU eviction can
  // never silently change serving results.
  ModelRegistry reg(1);
  const ModelSpec spec = tiny_spec("rt");
  ModelHandle first = reg.load(spec);
  const auto frames = request_frames(
      Shape{spec.config.in_channels, spec.in_h, spec.in_w}, 4, 11);
  const Tensor before = direct_reference(first, frames);
  ASSERT_NE(before.sum(), 0.0);  // guard: comparison must be non-vacuous

  reg.load(tiny_spec("other"));  // capacity 1: evicts "rt"
  EXPECT_FALSE(reg.is_resident("rt"));
  ModelHandle second = reg.load(spec);  // cold reload
  EXPECT_EQ(reg.cold_loads(), 3);
  EXPECT_NE(first.get(), second.get());

  const Tensor after = direct_reference(second, frames);
  EXPECT_EQ(Tensor::max_abs_diff(before, after), 0.f);

  // The evicted handle stays fully usable (eviction only drops the
  // registry's reference).
  EXPECT_EQ(Tensor::max_abs_diff(direct_reference(first, frames), before),
            0.f);
}

TEST(ModelRegistryTest, Int8EvictReloadRoundTripIsBitwiseReproducible) {
  // Int8 models self-calibrate at load time over a FIXED seeded spike
  // stream (ISSUE 10), so the eviction/reload contract above must hold
  // for them too: a cold reload re-runs the identical calibration sweep
  // and re-quantizes to a bit-identical plan.
  ModelRegistry reg(1);
  ModelSpec spec = tiny_spec("qrt");
  spec.compile.precision = infer::Precision::Int8;
  spec.calib_steps = 4;
  ModelHandle first = reg.load(spec);
  EXPECT_EQ(first->plan()->precision, infer::Precision::Int8);
  const auto frames = request_frames(
      Shape{spec.config.in_channels, spec.in_h, spec.in_w}, 4, 13);
  const Tensor before = direct_reference(first, frames);
  ASSERT_NE(before.sum(), 0.0);  // guard: comparison must be non-vacuous

  reg.load(tiny_spec("other"));  // capacity 1: evicts "qrt"
  EXPECT_FALSE(reg.is_resident("qrt"));
  ModelHandle second = reg.load(spec);  // cold reload => fresh calibration
  EXPECT_NE(first.get(), second.get());

  const Tensor after = direct_reference(second, frames);
  EXPECT_EQ(Tensor::max_abs_diff(before, after), 0.f);
}

TEST(ModelRegistryTest, Int8ManifestParsesAndLoads) {
  const std::string path = ::testing::TempDir() + "/int8_model.manifest";
  {
    std::ofstream out(path);
    out << "name quantized\n"
        << "family single_block\n"
        << "width 8\n"
        << "timesteps 4\n"
        << "theta 0.25\n"
        << "warm_bn_steps 4\n"
        << "precision int8\n"
        << "calib_steps 3\n"
        << "batch 2\n";
  }
  const ModelSpec spec = ModelSpec::from_manifest(path);
  EXPECT_EQ(spec.compile.precision, infer::Precision::Int8);
  EXPECT_EQ(spec.calib_steps, 3);

  ModelRegistry reg(2);
  ModelHandle m = reg.load(path);
  EXPECT_EQ(m->plan()->precision, infer::Precision::Int8);
  EXPECT_GT(m->plan()->weight_bytes(), 0);

  {
    std::ofstream out(path);
    out << "name quantized\nprecision int4\n";
  }
  EXPECT_THROW(ModelSpec::from_manifest(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ModelRegistryTest, CheckpointRestoreRoundTrip) {
  // Weights trained elsewhere and saved as SNNSKIP2 load through the
  // registry and change the served outputs vs the seeded init.
  const ModelSpec base = tiny_spec("ckpt-src");
  Network net = build_model(base.family, base.config,
                            default_adjacencies(base.family, base.config));
  {  // perturb + warm so saved weights differ from a fresh build
    Rng rng(123);
    net.reset_state();
    for (int t = 0; t < 4; ++t) {
      net.forward(Tensor::bernoulli(base.input_shape(), rng, 0.3f), true);
    }
    net.reset_state();
  }
  const std::string path = ::testing::TempDir() + "/serve_ckpt.snnskip2";
  ASSERT_TRUE(save_network(path, net));

  ModelRegistry reg(4);
  ModelSpec with_ckpt = tiny_spec("ckpt");
  with_ckpt.checkpoint = path;
  with_ckpt.warm_bn_steps = 0;
  ModelHandle restored = reg.load(with_ckpt);
  ModelHandle seeded = reg.load(tiny_spec("seeded"));
  std::remove(path.c_str());

  const auto frames = request_frames(
      Shape{base.config.in_channels, base.in_h, base.in_w}, 4, 13);
  // Restored-BN stats differ from the fixed warmup => different outputs.
  EXPECT_GT(Tensor::max_abs_diff(direct_reference(restored, frames),
                                 direct_reference(seeded, frames)),
            0.f);

  ModelSpec bad = tiny_spec("bad");
  bad.checkpoint = ::testing::TempDir() + "/does_not_exist.snnskip2";
  EXPECT_THROW(reg.load(bad), std::runtime_error);
}

TEST(ModelRegistryTest, LeasePoolReusesEngines) {
  ModelRegistry reg(4);
  ModelHandle m = reg.load(tiny_spec("pool"));
  {
    LoadedModel::Lease a = m->lease();
    LoadedModel::Lease b = m->lease();
    EXPECT_EQ(m->engines_created(), 2);
  }  // both returned
  {
    LoadedModel::Lease c = m->lease();
    EXPECT_EQ(m->engines_created(), 2);  // reused, not constructed
  }
}

TEST(ModelRegistryTest, ManifestParsing) {
  const std::string path = ::testing::TempDir() + "/model.manifest";
  {
    std::ofstream out(path);
    out << "# demo manifest\n"
        << "name manifested\n"
        << "family single_block\n"
        << "width 8\n"
        << "timesteps 4\n"
        << "neuron plif\n"
        << "theta 0.75\n"
        << "warm_bn_steps 4\n"
        << "batch 3\n"
        << "packed false\n"
        << "threshold 0.5\n";
  }
  const ModelSpec spec = ModelSpec::from_manifest(path);
  EXPECT_EQ(spec.name, "manifested");
  EXPECT_EQ(spec.family, "single_block");
  EXPECT_EQ(spec.config.width, 8);
  EXPECT_EQ(spec.config.neuron, NeuronKind::Plif);
  EXPECT_EQ(spec.config.lif.threshold, 0.75f);
  EXPECT_EQ(spec.batch, 3);
  EXPECT_FALSE(spec.exec.packed);
  EXPECT_EQ(spec.exec.threshold, 0.5f);

  ModelRegistry reg(2);
  ModelHandle m = reg.load(path);  // load(path) == load(from_manifest)
  EXPECT_EQ(m->batch_capacity(), 3);
  EXPECT_FALSE(m->lease()->options().packed);

  {
    std::ofstream out(path);
    out << "width notanumber\n";
  }
  EXPECT_THROW(ModelSpec::from_manifest(path), std::runtime_error);
  {
    std::ofstream out(path);
    out << "no_such_key 1\n";
  }
  EXPECT_THROW(ModelSpec::from_manifest(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ModelRegistryTest, HardLoadFailuresAreRecoverablePerModel) {
  // Every way a model blob can be bad on disk must surface as a per-model
  // try_load failure (nullptr + reason), never an uncaught throw: the
  // daemon skips the model and serves the rest.
  ModelRegistry reg(4);
  const std::string dir = ::testing::TempDir();

  // Duplicate key: the manifest was hand-edited into ambiguity.
  const std::string dup = dir + "/dup.manifest";
  {
    std::ofstream out(dup);
    out << "name dup\nwidth 8\nwidth 16\n";
  }
  std::string err;
  EXPECT_EQ(reg.try_load(dup, &err), nullptr);
  EXPECT_NE(err.find("duplicate key 'width'"), std::string::npos) << err;

  // Missing value for a key.
  const std::string noval = dir + "/noval.manifest";
  {
    std::ofstream out(noval);
    out << "name noval\nwidth\n";
  }
  EXPECT_EQ(reg.try_load(noval, &err), nullptr);
  EXPECT_NE(err.find("missing value"), std::string::npos) << err;

  // CRC-failing checkpoint: save a real one, then corrupt a byte in the
  // middle — load_network restores whole-or-nothing, so the registry must
  // refuse to serve the seeded init in its place.
  const ModelSpec base = tiny_spec("crc");
  Network net = build_model(base.family, base.config,
                            default_adjacencies(base.family, base.config));
  const std::string ckpt = dir + "/corrupt.snnskip2";
  ASSERT_TRUE(save_network(ckpt, net));
  {
    std::fstream f(ckpt, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(128);
    const char x = 'X';
    f.write(&x, 1);
  }
  ModelSpec bad = tiny_spec("crc");
  bad.checkpoint = ckpt;
  bad.warm_bn_steps = 0;
  EXPECT_EQ(reg.try_load(bad, &err), nullptr);
  EXPECT_NE(err.find("checkpoint missing or corrupt"), std::string::npos)
      << err;
  EXPECT_FALSE(reg.is_resident("crc"));

  // Un-corrupt path still loads: the registry itself is undamaged.
  ASSERT_TRUE(save_network(ckpt, net));
  EXPECT_NE(reg.try_load(bad, &err), nullptr);
  std::remove(ckpt.c_str());
  std::remove(dup.c_str());
  std::remove(noval.c_str());
}

// --- Server -----------------------------------------------------------------

ServeOptions fast_opts() {
  ServeOptions opts;
  opts.max_batch = 2;
  opts.latency_budget_us = 1000;
  opts.linger_us = 100;
  opts.queue_capacity = 64;
  opts.workers = 2;
  return opts;
}

TEST(ServerTest, ServedResultsMatchDirectEngine) {
  ModelRegistry reg(4);
  Server server(reg, fast_opts());
  const ModelSpec spec = tiny_spec("m");
  server.add_model(spec);
  ModelHandle direct = reg.load(spec);  // cache hit: same model

  const Shape frame{spec.config.in_channels, spec.in_h, spec.in_w};
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto frames = request_frames(frame, 4, 100 + seed);
    const Tensor served = server.infer("m", frames);
    const Tensor ref = direct_reference(direct, frames);
    ASSERT_EQ(served.numel(), ref.numel());
    EXPECT_LE(Tensor::max_abs_diff(served, ref), 1e-4f) << "seed " << seed;
  }
  const serve::ServeStats stats = server.stats();
  EXPECT_EQ(stats.completed, 6);
  EXPECT_EQ(stats.failed, 0);
}

TEST(ServerTest, VariableLengthSequencesBatchTogether) {
  // Requests with different T coalesce into one batch; each response
  // accumulates exactly its own T steps.
  ModelRegistry reg(4);
  ServeOptions opts = fast_opts();
  opts.max_batch = 2;
  opts.latency_budget_us = 50000;  // force coalescing, not deadline cuts
  opts.linger_us = 50000;
  opts.workers = 1;
  Server server(reg, opts);
  const ModelSpec spec = tiny_spec("v");
  server.add_model(spec);
  ModelHandle direct = reg.load(spec);

  const Shape frame{spec.config.in_channels, spec.in_h, spec.in_w};
  const auto short_req = request_frames(frame, 2, 31);
  const auto long_req = request_frames(frame, 4, 32);
  Server::Ticket a = server.submit("v", short_req);
  Server::Ticket b = server.submit("v", long_req);
  ASSERT_TRUE(a.accepted);
  ASSERT_TRUE(b.accepted);
  EXPECT_LE(Tensor::max_abs_diff(a.result.get(),
                                 direct_reference(direct, short_req)),
            1e-4f);
  EXPECT_LE(Tensor::max_abs_diff(b.result.get(),
                                 direct_reference(direct, long_req)),
            1e-4f);
  EXPECT_EQ(server.stats().batches, 1);  // one coalesced batch
}

TEST(ServerTest, LoneRequestFlushesOnDeadline) {
  // A single request on an idle server must not wait for a full batch;
  // the work-conserving linger cuts it almost immediately.
  ModelRegistry reg(4);
  ServeOptions opts = fast_opts();
  opts.max_batch = 8;
  opts.latency_budget_us = 30'000'000;  // budget alone would hang the test
  opts.linger_us = 100;
  Server server(reg, opts);
  const ModelSpec spec = tiny_spec("lone", /*batch=*/8);
  server.add_model(spec);

  const Shape frame{spec.config.in_channels, spec.in_h, spec.in_w};
  Timer t;
  (void)server.infer("lone", request_frames(frame, 4, 41));
  EXPECT_LT(t.elapsed_ms(), 5000.0);
  EXPECT_EQ(server.stats().completed, 1);
}

TEST(ServerTest, InvalidSubmitsThrow) {
  ModelRegistry reg(4);
  Server server(reg, fast_opts());
  server.add_model(tiny_spec("m"));
  const Shape frame{2, 8, 8};
  EXPECT_THROW((void)server.submit("nope", request_frames(frame, 2, 51)),
               std::invalid_argument);
  EXPECT_THROW((void)server.submit("m", {}), std::invalid_argument);
  EXPECT_THROW((void)server.submit(
                   "m", request_frames(Shape{2, 4, 4}, 2, 52)),
               std::invalid_argument);
}

TEST(ServerTest, QueueFullFaultSiteForcesRejection) {
  ModelRegistry reg(4);
  Server server(reg, fast_opts());
  server.add_model(tiny_spec("m"));
  const Shape frame{2, 8, 8};

  fault::arm("serve.queue_full", {.fire_at = 0, .count = 1});
  Server::Ticket rejected = server.submit("m", request_frames(frame, 2, 61));
  EXPECT_FALSE(rejected.accepted);
  EXPECT_GT(rejected.retry_after_us, 0);
  EXPECT_FALSE(rejected.result.valid());
  EXPECT_GE(fault::hits("serve.queue_full"), 1);
  fault::reset();

  // Next submit (site disarmed) is admitted and completes.
  Server::Ticket ok = server.submit("m", request_frames(frame, 2, 62));
  ASSERT_TRUE(ok.accepted);
  (void)ok.result.get();
  const serve::ServeStats stats = server.stats();
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.completed, 1);
}

TEST(ServerTest, DrainCompletesPendingAndStopsAdmission) {
  ModelRegistry reg(4);
  ServeOptions opts = fast_opts();
  opts.max_batch = 4;
  opts.latency_budget_us = 200000;  // hold batches open: drain must flush
  opts.linger_us = 200000;
  opts.workers = 1;
  Server server(reg, opts);
  const ModelSpec spec = tiny_spec("d", /*batch=*/4);
  server.add_model(spec);

  const Shape frame{spec.config.in_channels, spec.in_h, spec.in_w};
  std::vector<Server::Ticket> tickets;
  for (int i = 0; i < 3; ++i) {
    tickets.push_back(server.submit("d", request_frames(frame, 2, 70 + i)));
    ASSERT_TRUE(tickets.back().accepted);
  }
  server.drain();
  EXPECT_TRUE(server.draining());
  for (auto& t : tickets) {
    EXPECT_NO_THROW((void)t.result.get());  // all fulfilled, none dropped
  }
  EXPECT_EQ(server.stats().completed, 3);

  Server::Ticket late = server.submit("d", request_frames(frame, 2, 79));
  EXPECT_FALSE(late.accepted);  // admission closed
}

TEST(ServerTest, DrainUnderConcurrentSubmittersIsCleanAndBounded) {
  // drain() racing live submitters: every ticket handed out before the
  // admission gate closed must settle (value or drain-timeout error), and
  // submits after it must be rejected, never lost — the TSan job runs
  // this to prove the drain_cv_ signaling is race-free.
  ModelRegistry reg(4);
  ServeOptions opts = fast_opts();
  opts.workers = 2;
  opts.drain_timeout_ms = 10'000;  // generous: this test wants clean
  Server server(reg, opts);
  const ModelSpec spec = tiny_spec("dc", /*batch=*/4);
  server.add_model(spec);
  const Shape frame{spec.config.in_channels, spec.in_h, spec.in_w};

  std::atomic<bool> stop{false};
  std::atomic<int> settled{0}, rejected{0};
  std::vector<std::thread> submitters;
  for (int c = 0; c < 4; ++c) {
    submitters.emplace_back([&, c] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        Server::Ticket t = server.submit(
            "dc", request_frames(frame, 2, static_cast<std::uint64_t>(c) * 1000 + i++));
        if (!t.accepted) {
          ++rejected;
          continue;
        }
        try {
          (void)t.result.get();
        } catch (const std::runtime_error&) {
          // drain-timeout failure is a legitimate settlement
        }
        ++settled;
      }
    });
  }
  // Let the submitters build up real traffic, then drain under them.
  while (settled.load() < 16) std::this_thread::yield();
  EXPECT_TRUE(server.drain());
  stop.store(true);
  for (auto& t : submitters) t.join();
  EXPECT_GT(settled.load(), 0);
  // Post-drain submits are rejected, not hung.
  Server::Ticket late = server.submit("dc", request_frames(frame, 2, 9999));
  EXPECT_FALSE(late.accepted);
}

TEST(ServerTest, ConcurrentClientsAcrossModelsMatchReferences) {
  ModelRegistry reg(4);
  ServeOptions opts = fast_opts();
  opts.max_batch = 4;
  opts.workers = 2;
  Server server(reg, opts);
  const ModelSpec spec_a = tiny_spec("a", /*batch=*/4);
  ModelSpec spec_b = tiny_spec("b", /*batch=*/4);
  spec_b.config.lif.threshold = 2.f;  // distinct model, distinct outputs
  server.add_model(spec_a);
  server.add_model(spec_b);
  ModelHandle da = reg.load(spec_a);
  ModelHandle db = reg.load(spec_b);

  const Shape frame{2, 8, 8};
  constexpr int kClients = 4;
  constexpr int kPerClient = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const bool use_a = (c + i) % 2 == 0;
        const auto frames =
            request_frames(frame, 4, static_cast<std::uint64_t>(c * 100 + i));
        const Tensor served = server.infer(use_a ? "a" : "b", frames);
        const Tensor ref = direct_reference(use_a ? da : db, frames);
        if (Tensor::max_abs_diff(served, ref) > 1e-4f) ++mismatches;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const serve::ServeStats stats = server.stats();
  EXPECT_EQ(stats.completed, kClients * kPerClient);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_GE(stats.batches, 1);
}

// --- telemetry keying -------------------------------------------------------

TEST(ServeTelemetryTest, EngineCountersAreKeyedPerModel) {
  // Two engines serving differently named plans must not bleed into each
  // other's infer.* counters; aggregate keys still accumulate both.
  const bool was_enabled = Telemetry::enabled();
  Telemetry::set_enabled(true);
  Telemetry::reset();

  ModelRegistry reg(4);
  ModelHandle a = reg.load(tiny_spec("alpha"));
  ModelHandle b = reg.load(tiny_spec("beta"));
  const Shape frame{2, 8, 8};
  (void)direct_reference(a, request_frames(frame, 3, 7));
  (void)direct_reference(b, request_frames(frame, 2, 8));

  const auto counters = Telemetry::counters();
  ASSERT_TRUE(counters.count("infer.steps.alpha"));
  ASSERT_TRUE(counters.count("infer.steps.beta"));
  EXPECT_EQ(counters.at("infer.steps.alpha"), 3.0);
  EXPECT_EQ(counters.at("infer.steps.beta"), 2.0);
  ASSERT_TRUE(counters.count("infer.steps"));
  EXPECT_EQ(counters.at("infer.steps"), 5.0);

  Telemetry::reset();
  Telemetry::set_enabled(was_enabled);
}

// --- wire protocol ----------------------------------------------------------

namespace {

// Raw little-endian payload builder for crafting malformed requests the
// public encoder refuses to produce.
struct RawPayload {
  std::vector<std::uint8_t> bytes;
  template <typename T>
  void put(T v) {
    const auto* b = reinterpret_cast<const std::uint8_t*>(&v);
    bytes.insert(bytes.end(), b, b + sizeof(T));
  }
};

}  // namespace

TEST(WireProtocolTest, RequestRoundTripsThroughChunkedAssembler) {
  serve::wire::RequestMsg req;
  req.id = 42;
  req.deadline_ns = 123456789;
  req.model = "alpha";
  Rng rng(11);
  for (int t = 0; t < 3; ++t) {
    req.frames.push_back(Tensor::bernoulli(Shape{2, 4, 4}, rng, 0.4f));
  }
  const std::vector<std::uint8_t> frame = serve::wire::encode_request(req);

  // Feed the frame in deliberately awkward chunk sizes.
  serve::wire::FrameAssembler in;
  for (std::size_t off = 0; off < frame.size();) {
    const std::size_t n = std::min<std::size_t>(7, frame.size() - off);
    in.append(frame.data() + off, n);
    off += n;
  }
  auto f = in.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, serve::wire::FrameType::Request);
  EXPECT_TRUE(f->crc_ok);

  const serve::wire::RequestMsg back =
      serve::wire::decode_request(f->payload.data(), f->payload.size());
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.deadline_ns, req.deadline_ns);
  EXPECT_EQ(back.model, req.model);
  ASSERT_EQ(back.frames.size(), req.frames.size());
  for (std::size_t t = 0; t < req.frames.size(); ++t) {
    ASSERT_EQ(back.frames[t].shape(), req.frames[t].shape());
    for (std::int64_t i = 0; i < req.frames[t].numel(); ++i) {
      EXPECT_EQ(back.frames[t].data()[i], req.frames[t].data()[i]);
    }
  }
}

TEST(WireProtocolTest, OverflowingGeometryIsRejectedBeforeAllocation) {
  // t * c*h*w * sizeof(float) == 2^14 * 2^48 * 2^2 == 2^64 wraps to
  // exactly 0 in 64-bit arithmetic: every field is individually within
  // the geometry caps, so only an overflow-proof payload-size check
  // stands between this payload and a 2^50-byte allocation.
  RawPayload p;
  p.put<std::uint64_t>(1);             // id
  p.put<std::int64_t>(0);              // deadline
  p.put<std::uint16_t>(1);             // name_len
  p.bytes.push_back('m');              // name
  p.put<std::uint32_t>(16384);         // t
  p.put<std::uint32_t>(65536);         // c
  p.put<std::uint32_t>(65536);         // h
  p.put<std::uint32_t>(65536);         // w
  p.put<std::uint32_t>(0);             // a token amount of "tensor data"
  EXPECT_THROW(serve::wire::decode_request(p.bytes.data(), p.bytes.size()),
               serve::wire::ProtocolError);
}

TEST(WireProtocolTest, HeaderCorruptionIsDetectedDeterministically) {
  serve::wire::RequestMsg req;
  req.id = 7;
  req.model = "m";
  req.frames.push_back(Tensor(Shape{1, 2, 2}));
  const std::vector<std::uint8_t> frame = serve::wire::encode_request(req);

  // A flipped TYPE byte must not silently reroute the frame (a Request
  // read as Goaway would strand the client until its receive timeout).
  {
    std::vector<std::uint8_t> bad = frame;
    bad[4] ^= 0x02;  // Request (1) -> Goaway (3): valid range, wrong frame
    serve::wire::FrameAssembler in;
    in.append(bad.data(), bad.size());
    EXPECT_THROW(in.next(), serve::wire::ProtocolError);
  }
  // A flipped LENGTH byte must not desync the stream (or stall it
  // waiting for bytes that will never arrive).
  {
    std::vector<std::uint8_t> bad = frame;
    bad[8] ^= 0x01;
    serve::wire::FrameAssembler in;
    in.append(bad.data(), bad.size());
    EXPECT_THROW(in.next(), serve::wire::ProtocolError);
  }
  // A flipped PAYLOAD byte stays a torn frame: delimitation holds, the
  // frame pops with crc_ok == false, and the stream stays usable.
  {
    std::vector<std::uint8_t> bad = frame;
    bad[serve::wire::kHeaderBytes + 3] ^= 0x01;
    serve::wire::FrameAssembler in;
    in.append(bad.data(), bad.size());
    auto f = in.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_FALSE(f->crc_ok);
    in.append(frame.data(), frame.size());  // next frame parses cleanly
    auto g = in.next();
    ASSERT_TRUE(g.has_value());
    EXPECT_TRUE(g->crc_ok);
  }
}

}  // namespace
}  // namespace snnskip
