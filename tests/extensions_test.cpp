// Tests for the post-reproduction extensions:
//  * recurrent (backward) connections — the paper's future-work item —
//    including a two-timestep finite-difference check of the BPTT carry;
//  * network checkpointing;
//  * the energy-aware search objective (accuracy/energy trade-off);
//  * GP lengthscale model selection.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/adapter.h"
#include "core/evaluator.h"
#include "graph/block.h"
#include "models/zoo.h"
#include "opt/gp.h"
#include "train/checkpoint.h"
#include "train/evaluate.h"

namespace snnskip {
namespace {

// --- recurrent adjacency ----------------------------------------------------

TEST(RecurrentAdjacency, SlotEnumerationAndCount) {
  EXPECT_EQ(Adjacency::recurrent_slots(1).size(), 1u);   // (1,1)
  EXPECT_EQ(Adjacency::recurrent_slots(2).size(), 3u);   // (1,1)(2,1)(2,2)
  EXPECT_EQ(Adjacency::recurrent_slots(4).size(), 10u);  // d(d+1)/2
}

TEST(RecurrentAdjacency, SetAndGet) {
  Adjacency adj(3);
  adj.set_recurrent(3, 1, SkipType::ASC);
  adj.set_recurrent(2, 2, SkipType::ASC);  // self-delay
  EXPECT_EQ(adj.recurrent_at(3, 1), SkipType::ASC);
  EXPECT_EQ(adj.recurrent_at(2, 2), SkipType::ASC);
  EXPECT_EQ(adj.recurrent_at(3, 2), SkipType::None);
  EXPECT_EQ(adj.total_recurrent(), 2);
}

TEST(RecurrentAdjacency, RejectsInvalid) {
  Adjacency adj(3);
  EXPECT_THROW(adj.set_recurrent(1, 2, SkipType::ASC),
               std::invalid_argument);  // src < dst: that's a forward slot
  EXPECT_THROW(adj.set_recurrent(2, 1, SkipType::DSC),
               std::invalid_argument);  // concatenation across time
  EXPECT_THROW(adj.set_recurrent(4, 1, SkipType::ASC),
               std::invalid_argument);  // out of range
}

TEST(RecurrentAdjacency, IndependentOfForwardSlots) {
  Adjacency adj(4);
  adj.set(0, 2, SkipType::DSC);
  adj.set_recurrent(4, 1, SkipType::ASC);
  EXPECT_EQ(adj.at(0, 2), SkipType::DSC);
  EXPECT_EQ(adj.total_skips(), 1);
  EXPECT_EQ(adj.total_recurrent(), 1);
  // Forward encoding is unaffected by recurrent entries.
  const Adjacency decoded = Adjacency::decode(4, adj.encode());
  EXPECT_EQ(decoded.at(0, 2), SkipType::DSC);
}

// --- recurrent block execution ----------------------------------------------

BlockSpec rec_spec(std::int64_t c, int depth, bool spiking,
                   const std::string& name) {
  BlockSpec spec;
  spec.name = name;
  spec.in_channels = c;
  for (int i = 0; i < depth; ++i) {
    spec.nodes.push_back(NodePlan{NodeOp::Conv3x3, c, 1, spiking});
  }
  return spec;
}

TEST(RecurrentBlock, SlotAllowsRequiresEqualSpatial) {
  BlockSpec spec = rec_spec(4, 3, true, "ra");
  EXPECT_TRUE(spec.recurrent_slot_allows(3, 1, SkipType::ASC));
  EXPECT_TRUE(spec.recurrent_slot_allows(2, 2, SkipType::ASC));
  EXPECT_FALSE(spec.recurrent_slot_allows(1, 2, SkipType::ASC));  // src < dst
  EXPECT_FALSE(spec.recurrent_slot_allows(3, 1, SkipType::DSC));

  // With a stride in node 2, src=3 (half res) cannot feed dst=1 (full res).
  BlockSpec strided = rec_spec(4, 3, true, "rs");
  strided.nodes[1].stride = 2;
  EXPECT_FALSE(strided.recurrent_slot_allows(3, 1, SkipType::ASC));
  EXPECT_TRUE(strided.recurrent_slot_allows(3, 3, SkipType::ASC));
}

TEST(RecurrentBlock, ConstructionRejectsInvalidRecurrentEdge) {
  Rng rng(1);
  BlockSpec spec = rec_spec(4, 2, true, "rb");
  spec.nodes[0].stride = 2;
  Adjacency adj(2);
  adj.set_recurrent(2, 1, SkipType::ASC);  // spatial mismatch
  BlockConfig cfg;
  EXPECT_THROW(Block(spec, adj, cfg, rng), std::invalid_argument);
}

TEST(RecurrentBlock, FirstStepIgnoresRecurrence) {
  // With no previous outputs the recurrent edge contributes nothing, so
  // step 0 must match a recurrence-free twin built from the same seed.
  BlockSpec spec = rec_spec(3, 2, /*spiking=*/false, "rf");
  BlockConfig cfg;
  cfg.mode = NeuronMode::Analog;
  cfg.max_timesteps = 1;

  Rng rng1(7);
  Adjacency with_rec(2);
  with_rec.set_recurrent(2, 1, SkipType::ASC);
  Block a(spec, with_rec, cfg, rng1);
  Rng rng2(7);
  Block b(spec, Adjacency::chain(2), cfg, rng2);

  Rng xrng(9);
  Tensor x = Tensor::randn(Shape{1, 3, 4, 4}, xrng);
  Tensor ya = a.forward(x, false);
  Tensor yb = b.forward(x, false);
  EXPECT_LT(Tensor::max_abs_diff(ya, yb), 1e-6f);
}

TEST(RecurrentBlock, SecondStepUsesDelayedOutput) {
  BlockSpec spec = rec_spec(3, 2, /*spiking=*/false, "rd");
  BlockConfig cfg;
  cfg.mode = NeuronMode::Analog;
  cfg.max_timesteps = 2;

  Rng rng1(7);
  Adjacency with_rec(2);
  with_rec.set_recurrent(2, 1, SkipType::ASC);
  Block a(spec, with_rec, cfg, rng1);
  Rng rng2(7);
  Block b(spec, Adjacency::chain(2), cfg, rng2);

  Rng xrng(9);
  Tensor x = Tensor::randn(Shape{1, 3, 4, 4}, xrng);
  a.forward(x, false);
  b.forward(x, false);
  Tensor ya = a.forward(x, false);
  Tensor yb = b.forward(x, false);
  EXPECT_GT(Tensor::max_abs_diff(ya, yb), 1e-6f);
}

TEST(RecurrentBlock, ResetClearsDelayedState) {
  BlockSpec spec = rec_spec(3, 2, false, "rr");
  BlockConfig cfg;
  cfg.mode = NeuronMode::Analog;
  cfg.max_timesteps = 2;
  Rng rng(7);
  Adjacency adj(2);
  adj.set_recurrent(2, 1, SkipType::ASC);
  Block block(spec, adj, cfg, rng);

  Rng xrng(9);
  Tensor x = Tensor::randn(Shape{1, 3, 4, 4}, xrng);
  Tensor first = block.forward(x, false);
  block.forward(x, false);
  block.reset_state();
  Tensor again = block.forward(x, false);
  EXPECT_LT(Tensor::max_abs_diff(first, again), 1e-6f);
}

TEST(RecurrentBlock, ProjectionCreatedOnChannelMismatch) {
  BlockSpec spec;
  spec.name = "rp";
  spec.in_channels = 3;
  spec.nodes.push_back(NodePlan{NodeOp::Conv3x3, 5, 1, true});
  spec.nodes.push_back(NodePlan{NodeOp::Conv3x3, 5, 1, true});
  Rng rng(8);
  Adjacency adj(2);
  adj.set_recurrent(2, 1, SkipType::ASC);  // 5 channels onto 3-channel input
  BlockConfig cfg;
  Block block(spec, adj, cfg, rng);
  ASSERT_EQ(block.recurrent_edges().size(), 1u);
  EXPECT_NE(block.recurrent_edges()[0].proj, nullptr);
  // Projections are trainable and counted.
  const Shape in{1, 3, 4, 4};
  Block plain(spec, Adjacency::chain(2), cfg, rng);
  EXPECT_GT(block.parameters().size(), plain.parameters().size());
  EXPECT_GT(block.macs(in), plain.macs(in));
}

TEST(RecurrentBlock, TwoStepGradientsMatchFiniteDifferences) {
  // The BPTT carry across timesteps is the delicate part: check
  // dL/dx1, dL/dx2 and a parameter gradient against central differences of
  // a two-step unrolled loss L = <w1, y1> + <w2, y2>.
  BlockSpec spec = rec_spec(2, 2, /*spiking=*/false, "rg");
  BlockConfig cfg;
  cfg.mode = NeuronMode::Analog;
  cfg.max_timesteps = 2;
  Rng rng(11);
  Adjacency adj(2);
  adj.set_recurrent(2, 1, SkipType::ASC);
  adj.set_recurrent(1, 1, SkipType::ASC);  // self-delay too
  Block block(spec, adj, cfg, rng);

  Rng drng(12);
  Tensor x1 = Tensor::randn(Shape{1, 2, 4, 4}, drng);
  Tensor x2 = Tensor::randn(Shape{1, 2, 4, 4}, drng);
  Tensor w1 = Tensor::randn(Shape{1, 2, 4, 4}, drng);
  Tensor w2 = Tensor::randn(Shape{1, 2, 4, 4}, drng);

  auto loss = [&](const Tensor& a, const Tensor& b) {
    block.reset_state();
    Tensor y1 = block.forward(a, true);
    Tensor y2 = block.forward(b, true);
    block.reset_state();
    double s = 0.0;
    for (std::int64_t i = 0; i < y1.numel(); ++i) {
      s += static_cast<double>(y1[static_cast<std::size_t>(i)]) *
               w1[static_cast<std::size_t>(i)] +
           static_cast<double>(y2[static_cast<std::size_t>(i)]) *
               w2[static_cast<std::size_t>(i)];
    }
    return s;
  };

  // Analytic gradients.
  block.reset_state();
  block.forward(x1, true);
  block.forward(x2, true);
  for (Parameter* p : block.parameters()) p->zero_grad();
  Tensor g2 = block.backward(w2);
  Tensor g1 = block.backward(w1);
  // Snapshot a conv weight gradient before state reset.
  Parameter* probe_param = block.parameters().front();
  Tensor saved_grad = probe_param->grad;
  block.reset_state();

  const float eps = 1e-2f;
  auto fd_check = [&](Tensor& target, const Tensor& analytic) {
    const std::size_t stride =
        std::max<std::size_t>(1,
                              static_cast<std::size_t>(target.numel()) / 24);
    for (std::size_t i = 0; i < static_cast<std::size_t>(target.numel());
         i += stride) {
      const float orig = target[i];
      target[i] = orig + eps;
      const double lp = loss(x1, x2);
      target[i] = orig - eps;
      const double lm = loss(x1, x2);
      target[i] = orig;
      const double fd = (lp - lm) / (2.0 * eps);
      const double an = analytic[i];
      EXPECT_NEAR(fd, an, 4e-2 * std::max(1.0, std::abs(an)))
          << "flat index " << i;
    }
  };
  fd_check(x1, g1);
  fd_check(x2, g2);
  fd_check(probe_param->value, saved_grad);
}

// --- search space with recurrent slots ---------------------------------------

TEST(RecurrentSearchSpace, AppendsRecurrentSlots) {
  ModelConfig mc;
  mc.width = 4;
  const auto specs = single_block_specs(mc);
  const SearchSpace forward_only(specs, false);
  const SearchSpace with_rec(specs, true);
  // single_block: depth 4, all nodes stride 1 -> all 10 recurrent slots.
  EXPECT_EQ(with_rec.num_slots(), forward_only.num_slots() + 10);
}

TEST(RecurrentSearchSpace, RecurrentSlotsRejectDsc) {
  ModelConfig mc;
  mc.width = 4;
  const SearchSpace space(single_block_specs(mc), true);
  bool found = false;
  for (std::size_t k = 0; k < space.num_slots(); ++k) {
    if (!space.slots()[k].recurrent) continue;
    EXPECT_FALSE(space.value_allowed(k, 1));  // DSC
    EXPECT_TRUE(space.value_allowed(k, 2));   // ASC
    EXPECT_TRUE(space.value_allowed(k, 0));
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(RecurrentSearchSpace, DecodeBuildsRunnableNetworks) {
  ModelConfig mc;
  mc.width = 4;
  mc.in_channels = 2;
  mc.max_timesteps = 3;
  const SearchSpace space(single_block_specs(mc), true);
  Rng rng(21);
  for (int trial = 0; trial < 5; ++trial) {
    const EncodingVec code = space.sample(rng);
    ASSERT_TRUE(space.valid(code));
    Network net = build_model("single_block", mc, space.decode(code));
    Tensor x = Tensor::randn(Shape{1, 2, 8, 8}, rng);
    net.reset_state();
    for (int t = 0; t < 3; ++t) {
      EXPECT_EQ(net.forward(x, false).shape(), (Shape{1, 10}));
    }
    net.reset_state();
  }
}

TEST(RecurrentSearchSpace, RecurrentNetworkTrainsWithBptt) {
  // End-to-end: a network with active recurrent edges completes a
  // multi-timestep training epoch with finite loss (the carry mechanism
  // composes with the optimizer loop, not just isolated backward calls).
  SyntheticConfig dc;
  dc.height = 8;
  dc.width = 8;
  dc.timesteps = 4;
  dc.train_size = 20;
  dc.val_size = 10;
  dc.test_size = 10;
  dc.seed = 81;
  const DatasetBundle data = make_datasets("cifar10-dvs", dc);

  ModelConfig mc;
  mc.width = 4;
  mc.in_channels = 2;
  mc.max_timesteps = 4;
  Adjacency adj(4);
  adj.set(0, 2, SkipType::ASC);
  adj.set_recurrent(4, 1, SkipType::ASC);
  adj.set_recurrent(2, 2, SkipType::ASC);
  Network net = build_model("single_block", mc, {adj});

  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 10;
  tc.lr = 0.05f;
  const FitResult fr = fit(net, NeuronMode::Spiking, data.train, data.val, tc);
  EXPECT_TRUE(std::isfinite(fr.epochs.back().train_loss));
  EXPECT_LT(fr.epochs.back().train_loss, 10.0);
  const EvalResult res = evaluate(net, NeuronMode::Spiking, *data.test, tc);
  EXPECT_GE(res.accuracy, 0.0);
}

TEST(RecurrentSearchSpace, StridedBlocksExposeFewerRecurrentSlots) {
  ModelConfig mc;
  mc.width = 4;
  const auto specs = resnet18s_specs(mc);
  const SearchSpace space(specs, true);
  // Blocks whose node 1 strides lose the slots crossing the stride.
  std::size_t rec_slots = 0;
  for (const auto& slot : space.slots()) {
    if (slot.recurrent) ++rec_slots;
  }
  // depth-2 stride-free block: slots (1,1),(2,1),(2,2) = 3. In a strided
  // block node 1 halves the resolution, so (1,1) and (2,1) both cross the
  // stride and only (2,2) survives. Five stride-free blocks, three strided.
  EXPECT_EQ(rec_slots, 5u * 3u + 3u * 1u);
}

// --- checkpointing ------------------------------------------------------------

TEST(Checkpoint, EntriesRoundTrip) {
  const std::string path = testing::TempDir() + "ckpt_entries.bin";
  Rng rng(31);
  std::vector<CheckpointEntry> entries;
  entries.push_back({"a", Tensor::randn(Shape{3, 4}, rng)});
  entries.push_back({"b.weight", Tensor::randn(Shape{2, 2, 3, 3}, rng)});
  ASSERT_TRUE(save_entries(path, entries));

  std::vector<CheckpointEntry> loaded;
  ASSERT_TRUE(load_entries(path, loaded));
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].name, "a");
  EXPECT_EQ(loaded[1].name, "b.weight");
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(loaded[0].value, entries[0].value),
                  0.f);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(loaded[1].value, entries[1].value),
                  0.f);
  std::remove(path.c_str());
}

TEST(Checkpoint, NetworkRoundTrip) {
  const std::string path = testing::TempDir() + "ckpt_net.bin";
  ModelConfig mc;
  mc.width = 4;
  mc.in_channels = 2;
  Network a = build_model("single_block", mc,
                          default_adjacencies("single_block", mc));
  ASSERT_TRUE(save_network(path, a));

  ModelConfig mc2 = mc;
  mc2.seed = 999;
  Network b = build_model("single_block", mc2,
                          default_adjacencies("single_block", mc2));
  const std::size_t restored = load_network(path, b);
  EXPECT_EQ(restored, b.parameters().size());
  auto pa = a.parameters();
  auto pb = b.parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_FLOAT_EQ(Tensor::max_abs_diff(pa[i]->value, pb[i]->value), 0.f);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, PreservesEvalBehaviorIncludingRunningStats) {
  // Regression: batch-norm running statistics are buffers, not
  // parameters; a checkpoint that drops them restores a model whose
  // eval-mode forward differs. Train briefly (so stats move), save,
  // restore into a fresh net, and demand identical eval outputs.
  const std::string path = testing::TempDir() + "ckpt_eval.bin";
  const SyntheticConfig dc = [] {
    SyntheticConfig cfg;
    cfg.height = 8;
    cfg.width = 8;
    cfg.timesteps = 4;
    cfg.train_size = 30;
    cfg.val_size = 20;
    cfg.test_size = 20;
    cfg.seed = 71;
    return cfg;
  }();
  const DatasetBundle data = make_datasets("cifar10-dvs", dc);
  ModelConfig mc;
  mc.width = 4;
  mc.in_channels = 2;
  mc.max_timesteps = 4;
  Network a = build_model("single_block", mc,
                          default_adjacencies("single_block", mc));
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 10;
  tc.lr = 0.05f;
  fit(a, NeuronMode::Spiking, data.train, nullptr, tc);
  const EvalResult before = evaluate(a, NeuronMode::Spiking, *data.test, tc);
  ASSERT_TRUE(save_network(path, a));

  ModelConfig mc2 = mc;
  mc2.seed = 4242;
  Network b = build_model("single_block", mc2,
                          default_adjacencies("single_block", mc2));
  load_network(path, b);
  const EvalResult after = evaluate(b, NeuronMode::Spiking, *data.test, tc);
  EXPECT_DOUBLE_EQ(after.accuracy, before.accuracy);
  EXPECT_NEAR(after.loss, before.loss, 1e-9);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsCorruptFiles) {
  const std::string path = testing::TempDir() + "ckpt_bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint";
  }
  std::vector<CheckpointEntry> entries;
  EXPECT_FALSE(load_entries(path, entries));
  EXPECT_FALSE(load_entries("/nonexistent/path.bin", entries));
  std::remove(path.c_str());
}

TEST(Checkpoint, ShapeMismatchIsSkippedNotFatal) {
  const std::string path = testing::TempDir() + "ckpt_mismatch.bin";
  ModelConfig small;
  small.width = 4;
  small.in_channels = 2;
  Network a = build_model("single_block", small,
                          default_adjacencies("single_block", small));
  ASSERT_TRUE(save_network(path, a));

  ModelConfig wide = small;
  wide.width = 8;  // almost every shape differs...
  Network b = build_model("single_block", wide,
                          default_adjacencies("single_block", wide));
  // ...except the class-count-sized head bias [10], which still restores.
  EXPECT_EQ(load_network(path, b), 1u);
  std::remove(path.c_str());
}

// --- energy-aware objective ----------------------------------------------------

SyntheticConfig tiny_data() {
  SyntheticConfig cfg;
  cfg.height = 8;
  cfg.width = 8;
  cfg.timesteps = 4;
  cfg.train_size = 30;
  cfg.val_size = 20;
  cfg.test_size = 20;
  cfg.seed = 51;
  return cfg;
}

EvaluatorConfig tiny_eval_cfg() {
  EvaluatorConfig cfg;
  cfg.model = "single_block";
  cfg.model_cfg.width = 4;
  cfg.finetune.epochs = 1;
  cfg.finetune.batch_size = 10;
  cfg.finetune.lr = 0.05f;
  cfg.scratch = cfg.finetune;
  cfg.seed = 53;
  return cfg;
}

TEST(EnergyObjective, ZeroLambdaMatchesAccuracyObjective) {
  CandidateEvaluator ev(tiny_eval_cfg(),
                        make_datasets("cifar10-dvs", tiny_data()));
  Rng rng(55);
  const CandidateResult res = ev.evaluate_shared(ev.space().sample(rng));
  EXPECT_DOUBLE_EQ(res.objective, -res.val_accuracy);
  EXPECT_GT(res.energy_pj, 0.0);
}

TEST(EnergyObjective, LambdaPenalizesEnergy) {
  EvaluatorConfig cfg = tiny_eval_cfg();
  cfg.energy_weight = 1.0;
  CandidateEvaluator ev(cfg, make_datasets("cifar10-dvs", tiny_data()));
  ev.set_energy_reference(1.0);  // 1 pJ reference: penalty = energy_pj
  Rng rng(57);
  const CandidateResult res = ev.evaluate_shared(ev.space().sample(rng));
  EXPECT_NEAR(res.objective, -res.val_accuracy + res.energy_pj, 1e-6);
}

TEST(EnergyObjective, EnergyEstimateScalesWithMacsAndRate) {
  CandidateEvaluator ev(tiny_eval_cfg(),
                        make_datasets("cifar10-dvs", tiny_data()));
  EXPECT_DOUBLE_EQ(ev.candidate_energy_pj(1000, 0.0), 0.0);
  EXPECT_GT(ev.candidate_energy_pj(2000, 0.1),
            ev.candidate_energy_pj(1000, 0.1));
  EXPECT_GT(ev.candidate_energy_pj(1000, 0.2),
            ev.candidate_energy_pj(1000, 0.1));
}

// --- GP model selection ----------------------------------------------------------

TEST(GpModelSelection, PicksReasonableLengthscale) {
  // Data drawn from a smooth function favors larger lengthscales over a
  // tiny one that would interpolate noise.
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i <= 10; ++i) {
    const double x = i * 0.5;
    xs.push_back({x});
    ys.push_back(std::sin(x));
  }
  GaussianProcess gp = GaussianProcess::fit_best_lengthscale(
      xs, ys, {0.01, 1.0, 2.0}, 1.0, 1e-4);
  // A 0.01 lengthscale cannot generalize between points half a unit apart:
  // prediction midway between observations should still track sin.
  const GpPrediction p = gp.predict({0.25});
  EXPECT_NEAR(p.mean, std::sin(0.25), 0.15);
}

TEST(GpModelSelection, SingleCandidateGridWorks) {
  GaussianProcess gp = GaussianProcess::fit_best_lengthscale(
      {{0.0}, {1.0}}, {0.0, 1.0}, {1.5}, 1.0, 1e-4);
  EXPECT_TRUE(gp.fitted());
}

TEST(BayesOptAutoLengthscale, RunsAndConverges) {
  BoProblem problem;
  problem.sample = [](Rng& rng) {
    EncodingVec code(6);
    for (auto& v : code) v = static_cast<int>(rng.uniform_int(3ULL));
    return code;
  };
  problem.featurize = [](const EncodingVec& c) { return one_hot_features(c); };
  problem.objective = [](const EncodingVec& c) {
    double v = 0.0;
    for (int x : c) v += (2 - x);
    return v;
  };
  BoConfig cfg;
  cfg.auto_lengthscale = true;
  cfg.iterations = 6;
  cfg.batch_k = 2;
  cfg.seed = 61;
  const SearchTrace trace = run_bayes_opt(problem, cfg);
  EXPECT_LT(trace.best_value, 4.0);  // optimum 0, max 12
}

}  // namespace
}  // namespace snnskip
