// Tests for the third wave of extensions: spike-count readout (MSE count
// loss + spiking heads) and event-data augmentation.

#include <gtest/gtest.h>

#include <cmath>

#include "data/augment.h"
#include "data/synthetic_dvs_cifar.h"
#include "models/zoo.h"
#include "nn/loss.h"
#include "train/evaluate.h"
#include "train/trainer.h"

namespace snnskip {
namespace {

// --- mse_count_loss ---------------------------------------------------------

TEST(MseCountLoss, ZeroAtExactTargets) {
  // T = 10, correct target 9 spikes, wrong target 1 spike.
  Tensor counts(Shape{1, 3}, std::vector<float>{9.f, 1.f, 1.f});
  const LossResult r = mse_count_loss(counts, {0}, 10);
  EXPECT_NEAR(r.loss, 0.0, 1e-12);
  for (std::int64_t i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(r.grad_logits[static_cast<std::size_t>(i)], 0.f);
  }
  EXPECT_EQ(r.correct, 1u);
}

TEST(MseCountLoss, GradientPointsTowardTargets) {
  Tensor counts(Shape{1, 2}, std::vector<float>{0.f, 5.f});
  const LossResult r = mse_count_loss(counts, {0}, 10);
  // Class 0 undershoots its 9-spike target: negative gradient (push up).
  EXPECT_LT(r.grad_logits[0], 0.f);
  // Class 1 overshoots its 1-spike target: positive gradient (push down).
  EXPECT_GT(r.grad_logits[1], 0.f);
  EXPECT_GT(r.loss, 0.0);
}

TEST(MseCountLoss, GradientMatchesFiniteDifference) {
  Rng rng(1);
  Tensor counts = Tensor::rand(Shape{3, 4}, rng, 0.f, 8.f);
  const std::vector<std::int64_t> y{1, 3, 0};
  const LossResult r = mse_count_loss(counts, y, 8);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < 12; ++i) {
    Tensor cp = counts;
    cp[i] += eps;
    Tensor cm = counts;
    cm[i] -= eps;
    const double fd = (mse_count_loss(cp, y, 8).loss -
                       mse_count_loss(cm, y, 8).loss) /
                      (2.0 * eps);
    EXPECT_NEAR(fd, r.grad_logits[i], 1e-3);
  }
}

TEST(MseCountLoss, CountsCorrectByArgmax) {
  Tensor counts(Shape{2, 2}, std::vector<float>{5.f, 1.f, 2.f, 6.f});
  const LossResult r = mse_count_loss(counts, {0, 0}, 8);
  EXPECT_EQ(r.correct, 1u);
}

// --- spiking head + count readout end to end -----------------------------------

SyntheticConfig tiny_data() {
  SyntheticConfig cfg;
  cfg.height = 8;
  cfg.width = 8;
  cfg.timesteps = 4;
  cfg.train_size = 40;
  cfg.val_size = 20;
  cfg.test_size = 20;
  cfg.seed = 61;
  return cfg;
}

TEST(SpikingHead, OutputsAreBinaryPerStep) {
  ModelConfig mc;
  mc.width = 4;
  mc.in_channels = 2;
  mc.max_timesteps = 4;
  mc.spiking_head = true;
  Network net = build_model("single_block", mc,
                            default_adjacencies("single_block", mc));
  Rng rng(2);
  Tensor x = Tensor::rand(Shape{2, 2, 8, 8}, rng, 0.f, 2.f);
  net.reset_state();
  for (int t = 0; t < 4; ++t) {
    Tensor out = net.forward(x, false);
    for (std::int64_t i = 0; i < out.numel(); ++i) {
      const float v = out[static_cast<std::size_t>(i)];
      EXPECT_TRUE(v == 0.f || v == 1.f) << "t=" << t;
    }
  }
  net.reset_state();
}

TEST(SpikingHead, AnalogModeIgnoresFlag) {
  ModelConfig mc;
  mc.width = 4;
  mc.in_channels = 3;
  mc.max_timesteps = 1;
  mc.mode = NeuronMode::Analog;
  mc.spiking_head = true;  // must not add a LIF in analog mode
  Network net = build_model("single_block", mc,
                            default_adjacencies("single_block", mc));
  Rng rng(3);
  Tensor x = Tensor::randn(Shape{1, 3, 8, 8}, rng);
  Tensor out = net.forward(x, false);
  // Analog logits are generally non-binary.
  bool nonbinary = false;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    const float v = out[static_cast<std::size_t>(i)];
    if (v != 0.f && v != 1.f) nonbinary = true;
  }
  EXPECT_TRUE(nonbinary);
}

TEST(SpikingHead, TrainsWithCountLoss) {
  const DatasetBundle data = make_datasets("cifar10-dvs", tiny_data());
  ModelConfig mc;
  mc.width = 4;
  mc.in_channels = 2;
  mc.max_timesteps = 4;
  mc.spiking_head = true;
  Network net = build_model("single_block", mc,
                            default_adjacencies("single_block", mc));
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 10;
  tc.lr = 0.05f;
  tc.loss = LossKind::CountMse;
  const FitResult fr = fit(net, NeuronMode::Spiking, data.train, data.val, tc);
  EXPECT_EQ(fr.epochs.size(), 2u);
  EXPECT_TRUE(std::isfinite(fr.epochs.back().train_loss));
  // Loss should be finite and decreasing-or-equal across the two epochs.
  EXPECT_LE(fr.epochs[1].train_loss, fr.epochs[0].train_loss + 0.5);
  const EvalResult res = evaluate(net, NeuronMode::Spiking, *data.test, tc);
  EXPECT_GE(res.accuracy, 0.0);
  EXPECT_LE(res.accuracy, 1.0);
}

// --- augmentation ------------------------------------------------------------

TEST(Augment, HflipMirrorsColumns) {
  Tensor x(Shape{1, 1, 3}, std::vector<float>{1.f, 2.f, 3.f});
  Tensor y = hflip(x);
  EXPECT_FLOAT_EQ(y[0], 3.f);
  EXPECT_FLOAT_EQ(y[1], 2.f);
  EXPECT_FLOAT_EQ(y[2], 1.f);
}

TEST(Augment, HflipIsInvolution) {
  Rng rng(4);
  Tensor x = Tensor::randn(Shape{4, 5, 6}, rng);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(hflip(hflip(x)), x), 0.f);
}

TEST(Augment, ShiftMovesContentAndZeroFills) {
  Tensor x(Shape{1, 2, 2}, std::vector<float>{1.f, 2.f, 3.f, 4.f});
  Tensor y = shift2d(x, 1, 0);  // down by one row
  EXPECT_FLOAT_EQ(y.at({0, 0, 0}), 0.f);
  EXPECT_FLOAT_EQ(y.at({0, 1, 0}), 1.f);
  EXPECT_FLOAT_EQ(y.at({0, 1, 1}), 2.f);
}

TEST(Augment, ZeroShiftIsIdentity) {
  Rng rng(5);
  Tensor x = Tensor::randn(Shape{2, 4, 4}, rng);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(shift2d(x, 0, 0), x), 0.f);
}

TEST(Augment, DropEventsOnlyRemoves) {
  Rng rng(6);
  Tensor x = Tensor::bernoulli(Shape{1, 20, 20}, rng, 0.5f);
  Rng drop_rng(7);
  Tensor y = drop_events(x, 0.3f, drop_rng);
  // No new events, some removed.
  double removed = 0;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_LE(y[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(i)]);
    if (x[static_cast<std::size_t>(i)] != 0.f &&
        y[static_cast<std::size_t>(i)] == 0.f) {
      ++removed;
    }
  }
  EXPECT_GT(removed, 0);
  EXPECT_NEAR(removed / x.sum(), 0.3, 0.1);
}

TEST(Augment, DatasetViewIsDeterministic) {
  auto base = std::make_shared<SyntheticDvsCifar>(tiny_data(), Split::Train);
  AugmentConfig cfg;
  AugmentingDataset a(base, cfg);
  AugmentingDataset b(base, cfg);
  for (std::size_t i : {std::size_t{0}, std::size_t{5}, std::size_t{17}}) {
    const Sample sa = a.get(i);
    const Sample sb = b.get(i);
    EXPECT_EQ(sa.y, sb.y);
    EXPECT_FLOAT_EQ(Tensor::max_abs_diff(sa.x, sb.x), 0.f);
  }
}

TEST(Augment, DatasetViewPreservesLabelsAndShape) {
  auto base = std::make_shared<SyntheticDvsCifar>(tiny_data(), Split::Train);
  AugmentConfig cfg;
  AugmentingDataset aug(base, cfg);
  EXPECT_EQ(aug.size(), base->size());
  EXPECT_EQ(aug.num_classes(), base->num_classes());
  EXPECT_EQ(aug.timesteps(), base->timesteps());
  for (std::size_t i = 0; i < 10; ++i) {
    const Sample s = aug.get(i);
    EXPECT_EQ(s.y, base->get(i).y);
    EXPECT_EQ(s.x.shape(), base->sample_shape());
  }
}

TEST(Augment, DatasetViewActuallyChangesSamples) {
  auto base = std::make_shared<SyntheticDvsCifar>(tiny_data(), Split::Train);
  AugmentConfig cfg;
  AugmentingDataset aug(base, cfg);
  int changed = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    if (Tensor::max_abs_diff(aug.get(i).x, base->get(i).x) > 0.f) ++changed;
  }
  EXPECT_GT(changed, 5);
}

TEST(Augment, TrainsThroughTheLoaderPath) {
  auto base = std::make_shared<SyntheticDvsCifar>(tiny_data(), Split::Train);
  AugmentConfig acfg;
  auto aug = std::make_shared<AugmentingDataset>(base, acfg);
  ModelConfig mc;
  mc.width = 4;
  mc.in_channels = 2;
  mc.max_timesteps = 4;
  Network net = build_model("single_block", mc,
                            default_adjacencies("single_block", mc));
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 10;
  tc.lr = 0.05f;
  const FitResult fr = fit(net, NeuronMode::Spiking, aug, nullptr, tc);
  EXPECT_TRUE(std::isfinite(fr.epochs.back().train_loss));
}

}  // namespace
}  // namespace snnskip
