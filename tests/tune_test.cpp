// Autotuner unit tests (ISSUE 9): search-space plumbing, tuning-profile
// round-trip and rejection paths, journal resume, and the never-slower
// guarantee of tune_family.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "tensor/cpu_features.h"
#include "tensor/kernel_config.h"
#include "tune/tune.h"

namespace snnskip {
namespace {

using tune::Axis;
using tune::Family;
using tune::FamilyResult;
using tune::Space;
using tune::TuneOptions;

// ---- Space -----------------------------------------------------------------

TEST(TuneSpace, FlatEnumerationRoundTrips) {
  Space s;
  s.axes = {Axis{"a", {4, 6, 8}}, Axis{"b", {64, 128, 256, 512}},
            Axis{"c", {1}}};
  EXPECT_EQ(s.size(), 12);
  std::set<EncodingVec> seen;
  for (std::int64_t flat = 0; flat < s.size(); ++flat) {
    const EncodingVec code = s.from_flat(flat);
    EXPECT_TRUE(s.valid(code));
    seen.insert(code);
  }
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), s.size());

  EXPECT_FALSE(s.valid({}));
  EXPECT_FALSE(s.valid({0, 0}));
  EXPECT_FALSE(s.valid({3, 0, 0}));
  EXPECT_FALSE(s.valid({0, -1, 0}));

  EXPECT_EQ(s.value({1, 3, 0}, 0), 6);
  EXPECT_EQ(s.value({1, 3, 0}, 1), 512);

  const auto f = s.features({2, 0, 0});
  ASSERT_EQ(f.size(), 3u);
  EXPECT_DOUBLE_EQ(f[0], 1.0);   // last position
  EXPECT_DOUBLE_EQ(f[1], 0.0);   // first position
  EXPECT_DOUBLE_EQ(f[2], 0.0);   // single-choice axis pins to 0
}

// ---- Profile serialization -------------------------------------------------

TuningProfile sample_profile() {
  TuningProfile p;
  p.id = "unit";
  p.cpu_signature = "TestCPU|avx2=1|fma=0";
  p.simd = "avx2";
  p.config.gemm_tile = 2;
  p.config.gemm_kc = 256;
  p.config.transpose_tile = 64;
  p.config.sparse_threshold = 0.15f;
  p.config.infer_threshold = 0.35f;
  p.config.shards = 4;
  return p;
}

TEST(TuneProfile, SerializeParseRoundTrip) {
  const TuningProfile p = sample_profile();
  const std::string text = serialize_tuning_profile(p);
  TuningProfile q;
  std::string err;
  ASSERT_TRUE(parse_tuning_profile(text, &q, &err)) << err;
  EXPECT_EQ(q.id, p.id);
  EXPECT_EQ(q.cpu_signature, p.cpu_signature);
  EXPECT_EQ(q.simd, p.simd);
  EXPECT_EQ(q.config.gemm_tile, p.config.gemm_tile);
  EXPECT_EQ(q.config.gemm_kc, p.config.gemm_kc);
  EXPECT_EQ(q.config.transpose_tile, p.config.transpose_tile);
  EXPECT_FLOAT_EQ(q.config.sparse_threshold, p.config.sparse_threshold);
  EXPECT_FLOAT_EQ(q.config.infer_threshold, p.config.infer_threshold);
  EXPECT_EQ(q.config.shards, p.config.shards);
}

TEST(TuneProfile, EditedFieldFailsCrc) {
  std::string text = serialize_tuning_profile(sample_profile());
  // Flip a digit in a semantic field without touching the stored CRC.
  const auto pos = text.find("\"gemm_kc\": 256");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 14, "\"gemm_kc\": 512");
  TuningProfile q;
  std::string err;
  EXPECT_FALSE(parse_tuning_profile(text, &q, &err));
  EXPECT_NE(err.find("CRC"), std::string::npos) << err;
}

TEST(TuneProfile, TornFileRejected) {
  const std::string text = serialize_tuning_profile(sample_profile());
  // Note size - 5 truncates into the trailing CRC digits; a tear that
  // only loses the closing brace leaves every sealed field intact and is
  // legitimately accepted.
  for (std::size_t cut : {std::size_t{0}, text.size() / 4, text.size() / 2,
                          text.size() - 5}) {
    TuningProfile q;
    std::string err;
    EXPECT_FALSE(parse_tuning_profile(text.substr(0, cut), &q, &err))
        << "cut at " << cut;
  }
}

TEST(TuneProfile, WrongFormatVersionRejected) {
  std::string text = serialize_tuning_profile(sample_profile());
  const auto pos = text.find("snnskip-tune-v1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 15, "snnskip-tune-v9");
  TuningProfile q;
  std::string err;
  EXPECT_FALSE(parse_tuning_profile(text, &q, &err));
}

TEST(TuneProfile, IllegalTileRejected) {
  TuningProfile p = sample_profile();
  p.config.gemm_tile = 97;  // out of kGemmTiles range
  TuningProfile q;
  std::string err;
  EXPECT_FALSE(parse_tuning_profile(serialize_tuning_profile(p), &q, &err));
}

TEST(TuneProfile, WriteProfileValidatesCommittedBytes) {
  const std::string path =
      ::testing::TempDir() + "/tune_test_profile.json";
  TuningProfile p = sample_profile();
  std::string err;
  ASSERT_TRUE(tune::write_profile(p, path, &err)) << err;
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  TuningProfile q;
  ASSERT_TRUE(parse_tuning_profile(text, &q, &err)) << err;
  EXPECT_EQ(q.config.gemm_kc, 256);
  std::remove(path.c_str());
}

TEST(TuneProfile, SetKernelConfigClampsInvalidFields) {
  const KernelConfig saved = kernel_config();
  KernelConfig bad;
  bad.gemm_tile = -3;
  bad.gemm_kc = 0;
  bad.transpose_tile = -1;
  bad.sparse_threshold = 7.f;
  bad.infer_threshold = -2.f;
  bad.shards = -5;
  set_kernel_config(bad);
  const KernelConfig got = kernel_config();
  const KernelConfig def;
  EXPECT_EQ(got.gemm_tile, def.gemm_tile);
  EXPECT_EQ(got.gemm_kc, def.gemm_kc);
  EXPECT_EQ(got.transpose_tile, def.transpose_tile);
  EXPECT_FLOAT_EQ(got.sparse_threshold, def.sparse_threshold);
  EXPECT_FLOAT_EQ(got.infer_threshold, def.infer_threshold);
  EXPECT_EQ(got.shards, def.shards);
  set_kernel_config(saved);
}

// ---- tune_family: never-slower + journal resume ----------------------------

/// A synthetic family over one 5-choice axis whose "runtime" is supplied
/// by a table; counts measure() invocations.
struct FakeFamily {
  Family fam;
  int applied = -1;
  int measured = 0;
  std::vector<double> costs;

  explicit FakeFamily(std::vector<double> cost_table, int default_idx)
      : costs(std::move(cost_table)) {
    fam.name = "fake";
    fam.space.axes = {Axis{"knob", {10, 20, 30, 40, 50}}};
    fam.default_code = {default_idx};
    fam.apply = [this](const EncodingVec& code) { applied = code[0]; };
    fam.measure = [this] {
      ++measured;
      return costs[static_cast<std::size_t>(applied)];
    };
    fam.commit = [](const EncodingVec&, TuningProfile*) {};
  }
};

TEST(TuneFamily, NeverSlowerWhenDefaultIsBest) {
  FakeFamily f({1.0, 5.0, 5.0, 5.0, 5.0}, /*default_idx=*/0);
  TuneOptions opts;
  opts.budget = 5;
  opts.min_ms = 0.0;
  const FamilyResult r = tune_family(f.fam, opts);
  EXPECT_EQ(r.best_code, EncodingVec{0});
  EXPECT_DOUBLE_EQ(r.best_seconds, 1.0);
  EXPECT_DOUBLE_EQ(r.default_seconds, 1.0);
  EXPECT_LE(r.best_seconds, r.default_seconds);
  EXPECT_EQ(f.applied, 0) << "winner must be left installed";
}

TEST(TuneFamily, FindsBetterPointAndLeavesItApplied) {
  FakeFamily f({5.0, 4.0, 0.5, 4.0, 5.0}, /*default_idx=*/0);
  TuneOptions opts;
  opts.budget = 5;  // full space: the optimum is certainly measured
  opts.min_ms = 0.0;
  const FamilyResult r = tune_family(f.fam, opts);
  EXPECT_EQ(r.best_code, EncodingVec{2});
  EXPECT_DOUBLE_EQ(r.best_seconds, 0.5);
  EXPECT_DOUBLE_EQ(r.default_seconds, 5.0);
  EXPECT_EQ(f.measured, 5);
  EXPECT_EQ(f.applied, 2);
}

TEST(TuneFamily, ThrowingCandidateIsRecordedNotFatal) {
  FakeFamily f({3.0, 2.0, 0.0, 2.5, 1.5}, /*default_idx=*/0);
  // Candidate 2 "crashes"; it must be journaled as failed and never win.
  Family& fam = f.fam;
  auto inner = fam.measure;
  fam.measure = [inner, &f]() -> double {
    if (f.applied == 2) {
      ++f.measured;
      throw std::runtime_error("synthetic failure");
    }
    return inner();
  };
  TuneOptions opts;
  opts.budget = 5;
  opts.min_ms = 0.0;
  const FamilyResult r = tune_family(fam, opts);
  EXPECT_EQ(r.best_code, EncodingVec{4});
  EXPECT_DOUBLE_EQ(r.best_seconds, 1.5);
}

TEST(TuneFamily, JournalResumeReplaysInsteadOfRemeasuring) {
  const std::string prefix = ::testing::TempDir() + "/tune_test_journal";
  const std::string path = prefix + "_fake.jsonl";
  std::remove(path.c_str());

  TuneOptions opts;
  opts.budget = 5;
  opts.min_ms = 0.0;
  opts.journal_prefix = prefix;

  FakeFamily first({5.0, 4.0, 0.5, 4.0, 5.0}, 0);
  const FamilyResult r1 = tune_family(first.fam, opts);
  EXPECT_EQ(first.measured, 5);
  EXPECT_EQ(r1.replayed, 0);

  FakeFamily second({5.0, 4.0, 0.5, 4.0, 5.0}, 0);
  const FamilyResult r2 = tune_family(second.fam, opts);
  EXPECT_EQ(second.measured, 0) << "all points must come from the journal";
  EXPECT_EQ(r2.replayed, 5);
  EXPECT_EQ(r2.evaluated, 0);
  EXPECT_EQ(r2.best_code, r1.best_code);
  EXPECT_DOUBLE_EQ(r2.best_seconds, r1.best_seconds);
  EXPECT_EQ(second.applied, 2) << "winner re-applied on resume";
  std::remove(path.c_str());
}

TEST(TuneFamilies, BuildsStandardFamiliesInTuningOrder) {
  TuneOptions opts;
  opts.smoke = true;
  const std::vector<Family> fams = tune::build_families(opts);
  ASSERT_EQ(fams.size(), 6u);
  const char* expect[] = {"simd", "gemm", "transpose",
                          "sparse", "infer", "shards"};
  for (std::size_t i = 0; i < fams.size(); ++i) {
    EXPECT_EQ(fams[i].name, expect[i]);
    EXPECT_TRUE(fams[i].space.valid(fams[i].default_code)) << fams[i].name;
    EXPECT_GE(fams[i].space.size(), 2) << fams[i].name;
  }
}

}  // namespace
}  // namespace snnskip
