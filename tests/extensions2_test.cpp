// Tests for the second wave of extensions: PLIF (learnable leak), the
// latency (TTFS) encoder, regularized evolution, exhaustive enumeration,
// and the confusion-matrix metric.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/dataloader.h"
#include "metrics/confusion.h"
#include "models/zoo.h"
#include "opt/evolution.h"
#include "opt/exhaustive.h"
#include "snn/encoders.h"
#include "snn/plif.h"
#include "train/evaluate.h"
#include "train/trainer.h"

namespace snnskip {
namespace {

// --- PLIF ---------------------------------------------------------------------

LifConfig plif_cfg(float beta = 0.9f) {
  LifConfig cfg;
  cfg.beta = beta;
  cfg.threshold = 1.f;
  return cfg;
}

TEST(Plif, InitialBetaMatchesConfig) {
  Plif plif(plif_cfg(0.9f));
  EXPECT_NEAR(plif.beta(), 0.9f, 1e-5f);
  Plif leaky(plif_cfg(0.5f));
  EXPECT_NEAR(leaky.beta(), 0.5f, 1e-5f);
}

TEST(Plif, ForwardMatchesLifAtSameLeak) {
  Plif plif(plif_cfg());
  Lif lif(plif_cfg());
  Rng rng(1);
  Tensor x = Tensor::randn(Shape{2, 3, 4, 4}, rng, 0.4f, 0.5f);
  for (int t = 0; t < 4; ++t) {
    Tensor sp = plif.forward(x, false);
    Tensor sl = lif.forward(x, false);
    EXPECT_FLOAT_EQ(Tensor::max_abs_diff(sp, sl), 0.f) << "t=" << t;
  }
}

TEST(Plif, HasExactlyOneParameter) {
  Plif plif(plif_cfg());
  const auto params = plif.parameters();
  ASSERT_EQ(params.size(), 1u);
  EXPECT_EQ(params[0]->numel(), 1);
}

TEST(Plif, LeakGradientMatchesFiniteDifferences) {
  // Two-step probe loss; compare dL/dw to central differences. Use
  // sub-threshold inputs so no spike boundary is crossed by the FD step.
  Plif plif(plif_cfg(0.8f));
  Rng rng(2);
  Tensor x1 = Tensor::rand(Shape{1, 8}, rng, 0.1f, 0.4f);
  Tensor x2 = Tensor::rand(Shape{1, 8}, rng, 0.1f, 0.4f);
  Tensor w = Tensor::randn(Shape{1, 8}, rng);

  auto loss = [&]() {
    plif.reset_state();
    Tensor y1 = plif.forward(x1, true);
    Tensor y2 = plif.forward(x2, true);
    plif.reset_state();
    double s = 0.0;
    for (std::int64_t i = 0; i < y2.numel(); ++i) {
      // Spikes are piecewise constant; probe the membrane path via the
      // SURROGATE by reading... spikes only. With sub-threshold input the
      // loss is 0 everywhere, so instead perturb and compare *gradients*
      // computed by backward against the surrogate-defined pseudo-loss:
      s += static_cast<double>(y1[static_cast<std::size_t>(i)] +
                               y2[static_cast<std::size_t>(i)]) *
           w[static_cast<std::size_t>(i)];
    }
    return s;
  };
  (void)loss;

  // The spike output of a sub-threshold sequence is identically zero, so
  // finite differences of the spike loss are zero — what we CAN check
  // exactly is that backward's dL/dw equals the hand-derived expression
  //   sum_t dL/dV_t * V'_{t-1} * sigma'(w)
  // with dL/dV_t = w_t * surrogate'(u_t) + carried term.
  plif.reset_state();
  plif.forward(x1, true);
  plif.forward(x2, true);
  plif.parameters()[0]->zero_grad();
  plif.backward(w);
  Tensor g0(Shape{1, 8});
  plif.backward(g0);
  const float dw = plif.parameters()[0]->grad[0];

  // Hand computation.
  const float beta = 0.8f;
  const float wparam = std::log(beta / (1.f - beta));
  const float sig = 1.f / (1.f + std::exp(-wparam));
  const float dsig = sig * (1.f - sig);
  Surrogate sur = plif_cfg().surrogate;
  double expected = 0.0;
  for (std::int64_t i = 0; i < 8; ++i) {
    const float v1 = x1[static_cast<std::size_t>(i)];           // V_1 (V'_0=0)
    const float v2 = beta * v1 + x2[static_cast<std::size_t>(i)];
    // Step 2 backward: dL/dV_2 = w_i * sigma'(V_2 - 1); V'_1 = V_1.
    const float dv2 = w[static_cast<std::size_t>(i)] * sur.grad(v2 - 1.f);
    expected += static_cast<double>(dv2) * v1;
    // Step 1 backward: dL/dV_1 = 0 * sigma' + beta * dv2; V'_0 = 0.
    // contributes nothing to dw.
  }
  expected *= dsig;
  EXPECT_NEAR(dw, expected, 1e-4 * std::max(1.0, std::abs(expected)));
}

TEST(Plif, TrainsLeakParameter) {
  // A single gradient step should move the leak when gradients flow.
  ModelConfig mc;
  mc.width = 4;
  mc.in_channels = 2;
  mc.max_timesteps = 3;
  mc.neuron = NeuronKind::Plif;
  Network net = build_model("single_block", mc,
                            default_adjacencies("single_block", mc));
  // The network contains PLIF leak parameters.
  std::size_t leaks = 0;
  for (Parameter* p : net.parameters()) {
    if (p->name.find(".leak") != std::string::npos) ++leaks;
  }
  EXPECT_GT(leaks, 0u);
}

TEST(Plif, RecorderCountsSpikes) {
  FiringRateRecorder rec;
  Plif plif(plif_cfg(), "probe");
  plif.set_recorder(&rec);
  Tensor x = Tensor::full(Shape{10}, 1.5f);
  plif.forward(x, false);
  EXPECT_DOUBLE_EQ(rec.overall_rate(), 1.0);
}

// --- latency encoder ------------------------------------------------------------

TEST(LatencyEncoder, BrightPixelsFireFirst) {
  LatencyEncoder enc(4);
  Tensor x(Shape{1, 1, 1, 3}, std::vector<float>{1.0f, 0.5f, 0.0f});
  // t=0: only the brightest pixel.
  Tensor t0 = enc.encode(x, 0);
  EXPECT_FLOAT_EQ(t0[0], 1.f);
  EXPECT_FLOAT_EQ(t0[1], 0.f);
  EXPECT_FLOAT_EQ(t0[2], 0.f);
  // Intensity 0.5 -> t = round(0.5 * 3) = 2.
  Tensor t2 = enc.encode(x, 2);
  EXPECT_FLOAT_EQ(t2[1], 1.f);
  // Intensity 0.0 is below the firing floor: never fires.
  for (int t = 0; t < 4; ++t) {
    EXPECT_FLOAT_EQ(enc.encode(x, t)[2], 0.f);
  }
}

TEST(LatencyEncoder, EachPixelFiresAtMostOnce) {
  LatencyEncoder enc(6);
  Rng rng(3);
  Tensor x = Tensor::rand(Shape{2, 3, 5, 5}, rng);
  Tensor total(x.shape());
  for (int t = 0; t < 6; ++t) {
    total.add_(enc.encode(x, t));
  }
  EXPECT_LE(total.max_value(), 1.f);
}

TEST(LatencyEncoder, SparserThanPoisson) {
  // One spike per neuron across T steps vs p per step: latency coding is
  // the sparser code for any p > 1/T.
  LatencyEncoder lat(8);
  PoissonEncoder poi(5);
  Rng rng(4);
  Tensor x = Tensor::rand(Shape{1, 1, 20, 20}, rng, 0.3f, 1.f);
  double lat_spikes = 0.0, poi_spikes = 0.0;
  for (int t = 0; t < 8; ++t) {
    lat_spikes += lat.encode(x, t).sum();
    poi_spikes += poi.encode(x, t).sum();
  }
  EXPECT_LT(lat_spikes, poi_spikes);
}

TEST(LatencyEncoder, WiredIntoTrainingPlan) {
  SyntheticConfig dc;
  dc.height = 8;
  dc.width = 8;
  dc.train_size = 10;
  dc.val_size = 10;
  dc.test_size = 10;
  const DatasetBundle data = make_datasets("cifar10", dc);
  TrainConfig tc;
  tc.timesteps = 5;
  tc.encoding = EncodingKind::Latency;
  const EncodingPlan plan =
      make_encoding_plan(*data.train, NeuronMode::Spiking, tc);
  EXPECT_EQ(plan.timesteps, 5);
  DataLoader loader(*data.train, 4, false, 1);
  loader.start_epoch(0);
  Batch b;
  ASSERT_TRUE(loader.next(b));
  // Each pixel fires at most once across the plan's steps.
  Tensor total(plan.encoder->encode(b.x, 0).shape());
  for (std::int64_t t = 0; t < plan.timesteps; ++t) {
    total.add_(plan.encoder->encode(b.x, t));
  }
  EXPECT_LE(total.max_value(), 1.f);
}

// --- evolution --------------------------------------------------------------------

BoProblem toy_problem(int slots = 8) {
  BoProblem p;
  p.sample = [slots](Rng& rng) {
    EncodingVec code(static_cast<std::size_t>(slots));
    for (auto& v : code) v = static_cast<int>(rng.uniform_int(3ULL));
    return code;
  };
  p.featurize = [](const EncodingVec& c) { return one_hot_features(c); };
  p.objective = [](const EncodingVec& c) {
    double v = 0.0;
    for (int x : c) v += (2 - x) * 0.5;
    return v;
  };
  return p;
}

EncodingVec flip_mutate(const EncodingVec& code, Rng& rng) {
  EncodingVec out = code;
  const std::size_t k = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::uint64_t>(code.size())));
  out[k] = (out[k] + 1 + static_cast<int>(rng.uniform_int(2ULL))) % 3;
  return out;
}

TEST(Evolution, RunsRequestedEvaluations) {
  EvolutionConfig cfg;
  cfg.evaluations = 20;
  cfg.population = 6;
  const SearchTrace trace = run_evolution(toy_problem(), flip_mutate, cfg);
  EXPECT_EQ(trace.observations.size(), 20u);
  EXPECT_EQ(trace.best_so_far.size(), 20u);
}

TEST(Evolution, ImprovesOverInitialPopulation) {
  EvolutionConfig cfg;
  cfg.evaluations = 40;
  cfg.population = 8;
  cfg.seed = 5;
  const SearchTrace trace = run_evolution(toy_problem(), flip_mutate, cfg);
  // Best of the 8 seeds vs best overall: evolution should improve.
  double seed_best = 1e18;
  for (std::size_t i = 0; i < 8; ++i) {
    seed_best = std::min(seed_best, trace.observations[i].value);
  }
  EXPECT_LT(trace.best_value, seed_best);
}

TEST(Evolution, BestSoFarMonotone) {
  EvolutionConfig cfg;
  cfg.evaluations = 25;
  const SearchTrace trace = run_evolution(toy_problem(), flip_mutate, cfg);
  for (std::size_t i = 1; i < trace.best_so_far.size(); ++i) {
    EXPECT_LE(trace.best_so_far[i], trace.best_so_far[i - 1]);
  }
}

TEST(Evolution, DeterministicForSeed) {
  EvolutionConfig cfg;
  cfg.evaluations = 15;
  cfg.seed = 77;
  const SearchTrace a = run_evolution(toy_problem(), flip_mutate, cfg);
  const SearchTrace b = run_evolution(toy_problem(), flip_mutate, cfg);
  ASSERT_EQ(a.observations.size(), b.observations.size());
  for (std::size_t i = 0; i < a.observations.size(); ++i) {
    EXPECT_EQ(a.observations[i].code, b.observations[i].code);
  }
}

// --- exhaustive -------------------------------------------------------------------

TEST(Exhaustive, EnumeratesFullTernarySpace) {
  auto allow_all = [](std::size_t, int) { return true; };
  auto objective = [](const EncodingVec& c) {
    double v = 0.0;
    for (int x : c) v += (2 - x);
    return v;
  };
  const SearchTrace trace = run_exhaustive(3, allow_all, objective);
  EXPECT_EQ(trace.observations.size(), 27u);
  EXPECT_DOUBLE_EQ(trace.best_value, 0.0);
  EXPECT_EQ(trace.best, (EncodingVec{2, 2, 2}));
  // All distinct.
  std::set<std::uint64_t> seen;
  for (const auto& obs : trace.observations) {
    EXPECT_TRUE(seen.insert(encoding_hash(obs.code)).second);
  }
}

TEST(Exhaustive, RespectsConstraints) {
  // Slot 1 forbids value 1 (like a DSC-into-depthwise slot).
  auto allowed = [](std::size_t k, int v) { return !(k == 1 && v == 1); };
  const SearchTrace trace = run_exhaustive(
      2, allowed, [](const EncodingVec&) { return 0.0; });
  EXPECT_EQ(trace.observations.size(), 6u);  // 3 * 2
  for (const auto& obs : trace.observations) {
    EXPECT_NE(obs.code[1], 1);
  }
}

TEST(Exhaustive, CountMatchesEnumeration) {
  auto allowed = [](std::size_t k, int v) { return !(k == 0 && v == 2); };
  EXPECT_EQ(exhaustive_count(3, allowed), 2u * 3u * 3u);
}

TEST(Exhaustive, CapsRunawayEnumeration) {
  ExhaustiveConfig cfg;
  cfg.max_evaluations = 10;
  const SearchTrace trace =
      run_exhaustive(20, [](std::size_t, int) { return true; },
                     [](const EncodingVec&) { return 1.0; }, cfg);
  EXPECT_EQ(trace.observations.size(), 10u);
}

TEST(Exhaustive, AgreesWithBayesOptOnTinySpace) {
  // Ground-truth validation: BO must find the exhaustive optimum of a
  // 3^4 = 81-point space within a 30-evaluation budget.
  auto objective = [](const EncodingVec& c) {
    double v = 0.0;
    for (std::size_t i = 0; i < c.size(); ++i) {
      v += std::abs(c[i] - 1) * (static_cast<double>(i) + 1.0);
    }
    return v;  // optimum: all ones
  };
  const SearchTrace truth = run_exhaustive(
      4, [](std::size_t, int) { return true; }, objective);
  ASSERT_EQ(truth.best, (EncodingVec{1, 1, 1, 1}));

  BoProblem p;
  p.sample = [](Rng& rng) {
    EncodingVec code(4);
    for (auto& v : code) v = static_cast<int>(rng.uniform_int(3ULL));
    return code;
  };
  p.featurize = [](const EncodingVec& c) { return one_hot_features(c); };
  p.objective = objective;
  BoConfig cfg;
  cfg.initial_design = 6;
  cfg.iterations = 12;
  cfg.batch_k = 2;
  cfg.seed = 9;
  const SearchTrace bo = run_bayes_opt(p, cfg);
  EXPECT_DOUBLE_EQ(bo.best_value, truth.best_value);
}

// --- confusion matrix ---------------------------------------------------------------

TEST(ConfusionMatrix, CountsAndAccuracy) {
  ConfusionMatrix cm(3);
  cm.add_batch({0, 0, 1, 2, 2, 2}, {0, 1, 1, 2, 2, 0});
  EXPECT_EQ(cm.total(), 6);
  EXPECT_EQ(cm.count(0, 1), 1);
  EXPECT_EQ(cm.count(2, 2), 2);
  EXPECT_NEAR(cm.accuracy(), 4.0 / 6.0, 1e-12);
}

TEST(ConfusionMatrix, PrecisionRecall) {
  ConfusionMatrix cm(2);
  // truth 0: predicted 0, 0, 1; truth 1: predicted 1.
  cm.add_batch({0, 0, 0, 1}, {0, 0, 1, 1});
  EXPECT_NEAR(cm.recall(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.precision(0), 1.0, 1e-12);
  EXPECT_NEAR(cm.recall(1), 1.0, 1e-12);
  EXPECT_NEAR(cm.precision(1), 0.5, 1e-12);
}

TEST(ConfusionMatrix, MacroF1SkipsAbsentClasses) {
  ConfusionMatrix cm(3);
  cm.add_batch({0, 1}, {0, 1});  // class 2 never occurs
  EXPECT_NEAR(cm.macro_f1(), 1.0, 1e-12);
}

TEST(ConfusionMatrix, EmptyIsZero) {
  ConfusionMatrix cm(4);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.macro_f1(), 0.0);
  EXPECT_DOUBLE_EQ(cm.recall(1), 0.0);
}

TEST(ConfusionMatrix, StrContainsCounts) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(1, 0);
  const std::string s = cm.str();
  EXPECT_NE(s.find("truth"), std::string::npos);
}

}  // namespace
}  // namespace snnskip
