// Tests for the model zoo: every family builds, runs forward/backward,
// reports sane shapes/MACs, and its default adjacencies match the paper's
// native architectures.

#include <gtest/gtest.h>

#include "graph/mac_counter.h"
#include "models/zoo.h"

namespace snnskip {
namespace {

ModelConfig tiny_cfg(NeuronMode mode = NeuronMode::Spiking) {
  ModelConfig cfg;
  cfg.mode = mode;
  cfg.in_channels = 2;
  cfg.num_classes = 10;
  cfg.max_timesteps = 4;
  cfg.width = 4;
  cfg.seed = 9;
  return cfg;
}

class ModelFamily : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelFamily, BuildsAndRunsForward) {
  const std::string name = GetParam();
  const ModelConfig cfg = tiny_cfg();
  Network net = build_model(name, cfg, default_adjacencies(name, cfg));
  Rng rng(1);
  Tensor x = Tensor::randn(Shape{2, 2, 16, 16}, rng);
  Tensor y = net.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 10}));
}

TEST_P(ModelFamily, BackwardRuns) {
  const std::string name = GetParam();
  const ModelConfig cfg = tiny_cfg();
  Network net = build_model(name, cfg, default_adjacencies(name, cfg));
  Rng rng(2);
  Tensor x = Tensor::randn(Shape{1, 2, 16, 16}, rng);
  net.forward(x, true);
  Tensor g = Tensor::randn(Shape{1, 10}, rng);
  Tensor gx = net.backward(g);
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST_P(ModelFamily, MacsPositive) {
  const std::string name = GetParam();
  const ModelConfig cfg = tiny_cfg();
  Network net = build_model(name, cfg, default_adjacencies(name, cfg));
  EXPECT_GT(count_macs(net, Shape{1, 2, 16, 16}).total, 0);
}

TEST_P(ModelFamily, SpecsMatchBuiltBlocks) {
  const std::string name = GetParam();
  const ModelConfig cfg = tiny_cfg();
  const auto specs = model_block_specs(name, cfg);
  Network net = build_model(name, cfg, default_adjacencies(name, cfg));
  ASSERT_EQ(net.blocks().size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(net.blocks()[i]->name(), specs[i].name);
    EXPECT_EQ(net.blocks()[i]->spec().depth(), specs[i].depth());
  }
}

TEST_P(ModelFamily, AnalogTwinBuilds) {
  const std::string name = GetParam();
  ModelConfig cfg = tiny_cfg(NeuronMode::Analog);
  cfg.max_timesteps = 1;
  cfg.in_channels = 3;
  Network net = build_model(name, cfg, default_adjacencies(name, cfg));
  Rng rng(3);
  Tensor x = Tensor::randn(Shape{2, 3, 16, 16}, rng);
  EXPECT_EQ(net.forward(x, false).shape(), (Shape{2, 10}));
}

TEST_P(ModelFamily, SpikingModelEmitsSpikes) {
  const std::string name = GetParam();
  const ModelConfig cfg = tiny_cfg();
  Network net = build_model(name, cfg, default_adjacencies(name, cfg));
  FiringRateRecorder rec;
  net.set_recorder(&rec);
  Rng rng(4);
  Tensor x = Tensor::rand(Shape{2, 2, 16, 16}, rng, 0.f, 2.f);
  for (int t = 0; t < 3; ++t) net.forward(x, false);
  EXPECT_GT(rec.total_neuron_steps(), 0.0);
  EXPECT_GT(rec.total_spikes(), 0.0);  // strong input must fire something
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ModelFamily,
                         ::testing::ValuesIn(model_names()));

TEST(ModelZoo, NamesListedAndUnknownRejected) {
  EXPECT_EQ(model_names().size(), 4u);
  const ModelConfig cfg = tiny_cfg();
  EXPECT_THROW(build_model("nope", cfg, {}), std::invalid_argument);
  EXPECT_THROW(model_block_specs("nope", cfg), std::invalid_argument);
  EXPECT_THROW(default_adjacencies("nope", cfg), std::invalid_argument);
}

TEST(SingleBlock, HasOneFourLayerBlock) {
  const auto specs = single_block_specs(tiny_cfg());
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].depth(), 4);
  // Fig. 1 probe: all conv layers keep the stem width.
  for (const auto& n : specs[0].nodes) {
    EXPECT_EQ(n.out_channels, 4);
    EXPECT_EQ(n.stride, 1);
  }
}

TEST(SingleBlock, DefaultAdjacencyIsChain) {
  const ModelConfig cfg = tiny_cfg();
  const auto adjs = default_adjacencies("single_block", cfg);
  ASSERT_EQ(adjs.size(), 1u);
  EXPECT_EQ(adjs[0].total_skips(), 0);
}

TEST(Resnet18s, HasEightResidualBlocks) {
  const auto specs = resnet18s_specs(tiny_cfg());
  EXPECT_EQ(specs.size(), 8u);
  for (const auto& spec : specs) EXPECT_EQ(spec.depth(), 2);
}

TEST(Resnet18s, DefaultAdjacencyIsIdentityResidual) {
  const ModelConfig cfg = tiny_cfg();
  for (const auto& adj : default_adjacencies("resnet18s", cfg)) {
    EXPECT_EQ(adj.at(0, 2), SkipType::ASC);
    EXPECT_EQ(adj.total_skips(), 1);
  }
}

TEST(Resnet18s, StagesDownsample) {
  const auto specs = resnet18s_specs(tiny_cfg());
  // First block of stages 1..3 strides.
  EXPECT_EQ(specs[0].spatial_div(2), 1);
  EXPECT_EQ(specs[2].spatial_div(2), 2);
  EXPECT_EQ(specs[4].spatial_div(2), 2);
  EXPECT_EQ(specs[6].spatial_div(2), 2);
}

TEST(Densenet121s, DefaultAdjacencyIsAllDsc) {
  const ModelConfig cfg = tiny_cfg();
  const auto specs = densenet121s_specs(cfg);
  const auto adjs = default_adjacencies("densenet121s", cfg);
  ASSERT_EQ(adjs.size(), specs.size());
  for (std::size_t i = 0; i < adjs.size(); ++i) {
    const int slots = static_cast<int>(
        Adjacency::skip_slots(specs[i].depth()).size());
    EXPECT_EQ(adjs[i].count_type(SkipType::DSC), slots);
  }
}

TEST(Densenet121s, DepthsFollowScaledGrammar) {
  const auto specs = densenet121s_specs(tiny_cfg());
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].depth(), 3);
  EXPECT_EQ(specs[1].depth(), 4);
  EXPECT_EQ(specs[2].depth(), 4);
  EXPECT_EQ(specs[3].depth(), 3);
}

TEST(Mobilenetv2s, BlocksAreInvertedResiduals) {
  const auto specs = mobilenetv2s_specs(tiny_cfg());
  ASSERT_EQ(specs.size(), 5u);
  for (const auto& spec : specs) {
    ASSERT_EQ(spec.depth(), 3);
    EXPECT_EQ(spec.nodes[0].op, NodeOp::Conv1x1);
    EXPECT_EQ(spec.nodes[1].op, NodeOp::DwConv3x3);
    EXPECT_EQ(spec.nodes[2].op, NodeOp::Conv1x1);
    EXPECT_FALSE(spec.nodes[2].spiking);  // linear bottleneck
    // Expansion widens then projects back down.
    EXPECT_EQ(spec.nodes[0].out_channels, 2 * spec.in_channels);
  }
}

TEST(Mobilenetv2s, DefaultResidualOnlyOnStride1SameWidth) {
  const ModelConfig cfg = tiny_cfg();
  const auto specs = mobilenetv2s_specs(cfg);
  const auto adjs = default_adjacencies("mobilenetv2s", cfg);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const bool stride1 = specs[i].spatial_div(3) == 1;
    const bool same_c = specs[i].in_channels == specs[i].node_out_channels(3);
    if (stride1 && same_c) {
      EXPECT_EQ(adjs[i].at(0, 3), SkipType::ASC) << "block " << i;
    } else {
      EXPECT_EQ(adjs[i].total_skips(), 0) << "block " << i;
    }
  }
}

TEST(ModelZoo, DscSweepChangesMacsOnSingleBlock) {
  // Fig. 1's x-axis: more DSC skips -> more MACs; ASC leaves MACs flat.
  const ModelConfig cfg = tiny_cfg();
  std::int64_t prev = 0;
  for (int n = 0; n <= 3; ++n) {
    Network net = build_model(
        "single_block", cfg, {Adjacency::uniform(4, SkipType::DSC, n)});
    const std::int64_t macs = count_macs(net, Shape{1, 2, 16, 16}).total;
    EXPECT_GT(macs, prev);
    prev = macs;
  }
}

TEST(ModelZoo, WidthScalesParameters) {
  ModelConfig small = tiny_cfg();
  ModelConfig big = tiny_cfg();
  big.width = 8;
  Network a = build_model("resnet18s", small,
                          default_adjacencies("resnet18s", small));
  Network b =
      build_model("resnet18s", big, default_adjacencies("resnet18s", big));
  EXPECT_GT(b.parameter_count(), a.parameter_count());
}

}  // namespace
}  // namespace snnskip
