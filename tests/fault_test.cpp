// Fault drills for the robustness PR (ISSUE 3): the injection registry
// itself, crash-safe checkpointing under corruption/truncation/failed-I/O,
// divergence recovery in the trainer and candidate evaluator, the
// resumable search journal, and GP fit robustness.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/adapter.h"
#include "core/evaluator.h"
#include "fault/inject.h"
#include "opt/bayes_opt.h"
#include "opt/gp.h"
#include "opt/journal.h"
#include "opt/random_search.h"
#include "telemetry/telemetry.h"
#include "train/checkpoint.h"
#include "train/health.h"
#include "train/trainer.h"
#include "util/crc32.h"

namespace snnskip {
namespace {

// Every test disarms all sites on both ends, so a failing assertion in
// one test cannot leak an armed fault into the next.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }
};

// --- injection registry -------------------------------------------------------

TEST_F(FaultTest, UnarmedSitesAreInert) {
  EXPECT_FALSE(fault::any_armed());
  EXPECT_FALSE(SNNSKIP_FAULT("nothing.armed"));
  EXPECT_EQ(fault::hits("nothing.armed"), 0);
  EXPECT_DOUBLE_EQ(fault::payload("nothing.armed"), 0.0);
}

TEST_F(FaultTest, FiresAtRequestedOccurrenceWindow) {
  fault::arm("t.site", {.fire_at = 2, .count = 2});
  EXPECT_TRUE(fault::any_armed());
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(SNNSKIP_FAULT("t.site"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, false,
                                      false}));
  EXPECT_EQ(fault::hits("t.site"), 6);
}

TEST_F(FaultTest, NegativeCountFiresForever) {
  fault::arm("t.forever", {.fire_at = 1, .count = -1});
  EXPECT_FALSE(SNNSKIP_FAULT("t.forever"));
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(SNNSKIP_FAULT("t.forever"));
}

TEST_F(FaultTest, DisarmAndRearmSemantics) {
  fault::arm("t.rearm", {.fire_at = 0, .count = -1, .payload = 7.5});
  EXPECT_TRUE(SNNSKIP_FAULT("t.rearm"));
  EXPECT_DOUBLE_EQ(fault::payload("t.rearm"), 7.5);
  fault::disarm("t.rearm");
  EXPECT_FALSE(fault::any_armed());
  EXPECT_FALSE(SNNSKIP_FAULT("t.rearm"));
  // Re-arming restarts the occurrence counter.
  fault::arm("t.rearm", {.fire_at = 1, .count = 1});
  EXPECT_FALSE(SNNSKIP_FAULT("t.rearm"));
  EXPECT_TRUE(SNNSKIP_FAULT("t.rearm"));
}

// --- crc32 --------------------------------------------------------------------

TEST_F(FaultTest, Crc32KnownVectors) {
  // IEEE 802.3 check value for the standard "123456789" test string.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
  // Incremental == one-shot.
  const std::uint32_t head = crc32("12345", 5);
  EXPECT_EQ(crc32("6789", 4, head), 0xCBF43926u);
}

// --- crash-safe checkpoints ---------------------------------------------------

std::vector<CheckpointEntry> sample_entries() {
  Rng rng(77);
  std::vector<CheckpointEntry> entries;
  entries.push_back({"layer.weight", Tensor::randn(Shape{3, 4}, rng)});
  entries.push_back({"layer.bias", Tensor::randn(Shape{4}, rng)});
  return entries;
}

TEST_F(FaultTest, CheckpointWritesV2MagicAndRoundTrips) {
  const std::string path = testing::TempDir() + "fault_ckpt_v2.bin";
  const auto entries = sample_entries();
  ASSERT_TRUE(save_entries(path, entries));

  std::ifstream in(path, std::ios::binary);
  char magic[8];
  in.read(magic, 8);
  EXPECT_EQ(std::memcmp(magic, "SNNSKIP2", 8), 0);
  in.close();

  std::vector<CheckpointEntry> loaded;
  ASSERT_TRUE(load_entries(path, loaded));
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(loaded[0].value, entries[0].value),
                  0.f);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(loaded[1].value, entries[1].value),
                  0.f);
  std::remove(path.c_str());
}

TEST_F(FaultTest, FlippedPayloadByteIsCaughtByCrc) {
  const std::string path = testing::TempDir() + "fault_ckpt_flip.bin";
  ASSERT_TRUE(save_entries(path, sample_entries()));

  // Flip one bit of the final payload byte.
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(-1, std::ios::end);
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x10);
  f.seekp(-1, std::ios::end);
  f.write(&b, 1);
  f.close();

  std::vector<CheckpointEntry> loaded{{"sentinel", Tensor(Shape{1})}};
  EXPECT_FALSE(load_entries(path, loaded));
  // All-or-nothing: no partial restore survives a rejected file.
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST_F(FaultTest, TruncatedFileIsRejectedWithoutPartialLoad) {
  const std::string path = testing::TempDir() + "fault_ckpt_trunc.bin";
  ASSERT_TRUE(save_entries(path, sample_entries()));
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 5);

  std::vector<CheckpointEntry> loaded{{"sentinel", Tensor(Shape{1})}};
  EXPECT_FALSE(load_entries(path, loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST_F(FaultTest, BadMagicIsRejected) {
  const std::string path = testing::TempDir() + "fault_ckpt_magic.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "SNNSKIP9garbagegarbagegarbage";
  }
  std::vector<CheckpointEntry> loaded;
  EXPECT_FALSE(load_entries(path, loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

template <typename T>
void put(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

TEST_F(FaultTest, OversizedDimsRejectedBeforeAllocation) {
  // Header claims two 2^40 dims: numel 2^80 would overflow int64 and the
  // sane-looking per-dim values would each pass a naive range check. The
  // loader must reject against the actual file size without allocating.
  const std::string path = testing::TempDir() + "fault_ckpt_dims.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out.write("SNNSKIP2", 8);
    put(out, static_cast<std::uint64_t>(1));  // one entry
    put(out, static_cast<std::uint32_t>(1));  // name "a"
    out.write("a", 1);
    put(out, static_cast<std::uint32_t>(2));  // ndim
    put(out, static_cast<std::int64_t>(1) << 40);
    put(out, static_cast<std::int64_t>(1) << 40);
    put(out, static_cast<std::uint32_t>(0));  // crc
  }
  std::vector<CheckpointEntry> loaded;
  EXPECT_FALSE(load_entries(path, loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST_F(FaultTest, AbsurdEntryCountRejected) {
  const std::string path = testing::TempDir() + "fault_ckpt_count.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out.write("SNNSKIP2", 8);
    put(out, static_cast<std::uint64_t>(1) << 60);  // entry count
  }
  std::vector<CheckpointEntry> loaded;
  EXPECT_FALSE(load_entries(path, loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST_F(FaultTest, LegacyV1FilesStillLoad) {
  const std::string path = testing::TempDir() + "fault_ckpt_v1.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out.write("SNNSKIP1", 8);
    put(out, static_cast<std::uint64_t>(1));
    put(out, static_cast<std::uint32_t>(1));
    out.write("a", 1);
    put(out, static_cast<std::uint32_t>(1));  // ndim
    put(out, static_cast<std::int64_t>(2));   // dim (no crc in v1)
    const float payload[2] = {1.5f, -2.5f};
    out.write(reinterpret_cast<const char*>(payload), sizeof(payload));
  }
  std::vector<CheckpointEntry> loaded;
  ASSERT_TRUE(load_entries(path, loaded));
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].name, "a");
  EXPECT_FLOAT_EQ(loaded[0].value[0], 1.5f);
  EXPECT_FLOAT_EQ(loaded[0].value[1], -2.5f);
  std::remove(path.c_str());
}

TEST_F(FaultTest, InjectedWriteFailureLeavesNoFileBehind) {
  const std::string path = testing::TempDir() + "fault_ckpt_wfail.bin";
  fault::arm("checkpoint.write_fail", {.fire_at = 0, .count = 1});
  EXPECT_FALSE(save_entries(path, sample_entries()));
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  // The fault window has passed: the retried save succeeds and loads.
  ASSERT_TRUE(save_entries(path, sample_entries()));
  std::vector<CheckpointEntry> loaded;
  EXPECT_TRUE(load_entries(path, loaded));
  std::remove(path.c_str());
}

TEST_F(FaultTest, InjectedTornWriteIsRejectedOnLoad) {
  const std::string path = testing::TempDir() + "fault_ckpt_torn.bin";
  fault::arm("checkpoint.torn", {.fire_at = 0, .count = 1, .payload = 7.0});
  ASSERT_TRUE(save_entries(path, sample_entries()));
  fault::reset();
  std::vector<CheckpointEntry> loaded{{"sentinel", Tensor(Shape{1})}};
  EXPECT_FALSE(load_entries(path, loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

// --- trainer divergence recovery ----------------------------------------------

SyntheticConfig tiny_data() {
  SyntheticConfig cfg;
  cfg.height = 8;
  cfg.width = 8;
  cfg.timesteps = 4;
  cfg.train_size = 40;
  cfg.val_size = 20;
  cfg.test_size = 20;
  cfg.seed = 31;
  return cfg;
}

ModelConfig tiny_model() {
  ModelConfig cfg;
  cfg.mode = NeuronMode::Spiking;
  cfg.in_channels = 2;
  cfg.num_classes = 10;
  cfg.max_timesteps = 4;
  cfg.width = 4;
  cfg.seed = 5;
  return cfg;
}

TrainConfig tiny_train(std::int64_t epochs = 2) {
  TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 10;
  cfg.lr = 0.05f;
  cfg.timesteps = 4;
  cfg.seed = 17;
  return cfg;
}

TEST_F(FaultTest, TrainerRecoversFromInjectedNan) {
  const DatasetBundle data = make_datasets("cifar10-dvs", tiny_data());
  const ModelConfig mc = tiny_model();
  Network net = build_model("single_block", mc,
                            default_adjacencies("single_block", mc));
  TrainConfig cfg = tiny_train();
  cfg.health.enabled = true;
  cfg.health.max_retries = 2;

  fault::arm("train.nan", {.fire_at = 1, .count = 1});  // poison batch 2
  const FitResult result =
      fit(net, NeuronMode::Spiking, data.train, nullptr, cfg);

  EXPECT_FALSE(result.diverged);
  EXPECT_GE(result.health_retries, 1);
  EXPECT_EQ(result.epochs.size(), 2u);  // the redone epoch still completes
  for (Parameter* p : net.parameters()) {
    const float* v = p->value.data();
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      ASSERT_TRUE(std::isfinite(v[i])) << p->name;
    }
  }
}

TEST_F(FaultTest, TrainerFailsAfterRetryBudgetExhausted) {
  const DatasetBundle data = make_datasets("cifar10-dvs", tiny_data());
  const ModelConfig mc = tiny_model();
  Network net = build_model("single_block", mc,
                            default_adjacencies("single_block", mc));
  TrainConfig cfg = tiny_train();
  cfg.health.enabled = true;
  cfg.health.max_retries = 2;

  fault::arm("train.nan", {.fire_at = 0, .count = -1});  // every batch
  const FitResult result =
      fit(net, NeuronMode::Spiking, data.train, nullptr, cfg);

  EXPECT_TRUE(result.diverged);
  EXPECT_EQ(result.health_retries, 2);
  EXPECT_TRUE(result.epochs.empty());  // no epoch ever completed healthy
}

TEST_F(FaultTest, HealthDisabledKeepsLegacyBehavior) {
  // With the monitor off an injected NaN propagates — proving the guard
  // (not luck) is what saves the guarded runs above.
  const DatasetBundle data = make_datasets("cifar10-dvs", tiny_data());
  const ModelConfig mc = tiny_model();
  Network net = build_model("single_block", mc,
                            default_adjacencies("single_block", mc));
  TrainConfig cfg = tiny_train(1);
  ASSERT_FALSE(cfg.health.enabled);

  fault::arm("train.nan", {.fire_at = 0, .count = 1});
  const FitResult result =
      fit(net, NeuronMode::Spiking, data.train, nullptr, cfg);
  EXPECT_FALSE(result.diverged);  // nobody watched
  bool any_nonfinite = false;
  for (Parameter* p : net.parameters()) {
    const float* v = p->value.data();
    for (std::int64_t i = 0; i < p->value.numel() && !any_nonfinite; ++i) {
      any_nonfinite = !std::isfinite(v[i]);
    }
  }
  EXPECT_TRUE(any_nonfinite);
}

// --- candidate evaluator isolation --------------------------------------------

CandidateEvaluator make_tiny_evaluator() {
  EvaluatorConfig cfg;
  cfg.model = "single_block";
  cfg.model_cfg = tiny_model();
  cfg.finetune = tiny_train(1);
  cfg.scratch = tiny_train(1);
  cfg.seed = 7;
  return CandidateEvaluator(cfg, make_datasets("cifar10-dvs", tiny_data()));
}

TEST_F(FaultTest, EvaluatorEnablesHealthGuardByDefault) {
  CandidateEvaluator ev = make_tiny_evaluator();
  EXPECT_TRUE(ev.config().finetune.health.enabled);
  EXPECT_TRUE(ev.config().scratch.health.enabled);
}

TEST_F(FaultTest, FailedCandidateLeavesSharedWeightsUntouched) {
  CandidateEvaluator ev = make_tiny_evaluator();
  const EncodingVec chain(ev.space().num_slots(), 0);
  EncodingVec other = chain;
  other[0] = 2;

  // Healthy first candidate populates the store.
  const CandidateResult first = ev.evaluate_shared(chain);
  ASSERT_FALSE(first.failed);
  const WeightStore before = ev.store();

  // Second candidate diverges past the whole retry budget.
  fault::arm("train.nan", {.fire_at = 0, .count = -1});
  const CandidateResult failed = ev.evaluate_shared(other);
  fault::reset();

  EXPECT_TRUE(failed.failed);
  EXPECT_TRUE(std::isfinite(failed.objective));
  EXPECT_DOUBLE_EQ(failed.objective, ev.config().failure_penalty);
  EXPECT_EQ(failed.health_retries, ev.config().finetune.health.max_retries);
  // Byte-identical store: the diverged fine-tune never leaked through.
  EXPECT_TRUE(ev.store().identical_to(before));

  // The search continues: the same candidate succeeds without the fault.
  const CandidateResult retry = ev.evaluate_shared(other);
  EXPECT_FALSE(retry.failed);
  EXPECT_FALSE(ev.store().identical_to(before));  // healthy update landed
}

TEST_F(FaultTest, SearchSurvivesDivergingCandidateMidBo) {
  // Acceptance drill: a candidate that reliably diverges inside a short
  // BO run is retried, penalized, and the search completes its budget.
  CandidateEvaluator ev = make_tiny_evaluator();
  const BoProblem problem = make_bo_problem(ev);
  BoConfig cfg;
  cfg.initial_design = 2;
  cfg.iterations = 2;
  cfg.batch_k = 1;
  cfg.candidate_pool = 8;
  cfg.seed = 5;

  // Diverge exactly the 2nd candidate: its first batch is occurrence 4
  // (candidate 1 consumed 4), and each of its max_retries+1 = 3 attempts
  // hits one more occurrence before rolling back.
  const std::int64_t batches_per_finetune = 40 / 10;
  fault::arm("train.nan",
             {.fire_at = batches_per_finetune, .count = 3});
  const SearchTrace trace = run_bayes_opt(problem, cfg);
  fault::reset();

  ASSERT_EQ(trace.observations.size(), 4u);
  int failures = 0;
  for (const auto& obs : trace.observations) {
    EXPECT_TRUE(std::isfinite(obs.value));
    failures += obs.failed ? 1 : 0;
  }
  EXPECT_EQ(failures, 1);
  EXPECT_TRUE(trace.observations[1].failed);
  // The search carried on past the failure with healthy evaluations, and
  // the incumbent never comes from a penalized candidate.
  EXPECT_FALSE(trace.observations[2].failed);
  EXPECT_FALSE(trace.observations[3].failed);
  EXPECT_LT(trace.best_value, ev.config().failure_penalty);
}

// --- search journal -----------------------------------------------------------

TEST_F(FaultTest, JournalAppendReplayRoundTrip) {
  const std::string path = testing::TempDir() + "fault_journal_rt.jsonl";
  std::remove(path.c_str());
  {
    SearchJournal j(path);
    ASSERT_TRUE(j.enabled());
    j.append(0, {0, 1, 2}, 0.5, false);
    j.append(1, {2, 2, 0}, 0.123456789012345678, true);
  }
  const auto entries = SearchJournal::replay(path);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].code, (EncodingVec{0, 1, 2}));
  EXPECT_DOUBLE_EQ(entries[0].value, 0.5);
  EXPECT_FALSE(entries[0].failed);
  // %.17g round-trips doubles exactly.
  EXPECT_DOUBLE_EQ(entries[1].value, 0.123456789012345678);
  EXPECT_TRUE(entries[1].failed);
  std::remove(path.c_str());
}

TEST_F(FaultTest, JournalTornTailIsDroppedAndRepaired) {
  const std::string path = testing::TempDir() + "fault_journal_torn.jsonl";
  std::remove(path.c_str());
  {
    SearchJournal j(path);
    j.append(0, {1, 1}, 1.0, false);
    j.append(1, {0, 2}, 2.0, false);
  }
  {
    // Simulate a kill mid-write: a partial final line without newline.
    std::ofstream out(path, std::ios::app);
    out << "{\"idx\": 2, \"code\": [0, 1";
  }
  const auto entries = SearchJournal::replay(path);
  ASSERT_EQ(entries.size(), 2u);
  // The torn fragment was truncated, so appending now yields a valid row.
  {
    SearchJournal j(path);
    j.append(2, {2, 0}, 3.0, false);
  }
  const auto repaired = SearchJournal::replay(path);
  ASSERT_EQ(repaired.size(), 3u);
  EXPECT_DOUBLE_EQ(repaired[2].value, 3.0);
  std::remove(path.c_str());
}

TEST_F(FaultTest, JournalMissingFileReplaysEmpty) {
  EXPECT_TRUE(SearchJournal::replay(testing::TempDir() +
                                    "fault_journal_nope.jsonl")
                  .empty());
  EXPECT_TRUE(SearchJournal::replay("").empty());
  SearchJournal disabled("");
  EXPECT_FALSE(disabled.enabled());
  disabled.append(0, {1}, 1.0, false);  // must be a no-op, not a crash
}

// Toy objective shared by the resume drills (same shape as opt_test's).
BoProblem toy_problem(int slots, int* live_calls) {
  BoProblem p;
  p.sample = [slots](Rng& rng) {
    EncodingVec code(static_cast<std::size_t>(slots));
    for (auto& v : code) v = static_cast<int>(rng.uniform_int(3ULL));
    return code;
  };
  p.featurize = [](const EncodingVec& code) {
    return one_hot_features(code);
  };
  p.objective = [live_calls](const EncodingVec& code) {
    if (live_calls != nullptr) ++*live_calls;
    double v = 0.0;
    for (int c : code) v += (2 - c) * 0.5;
    return v;
  };
  return p;
}

void expect_same_trace(const SearchTrace& a, const SearchTrace& b) {
  ASSERT_EQ(a.observations.size(), b.observations.size());
  for (std::size_t i = 0; i < a.observations.size(); ++i) {
    EXPECT_EQ(a.observations[i].code, b.observations[i].code) << i;
    EXPECT_DOUBLE_EQ(a.observations[i].value, b.observations[i].value) << i;
  }
  ASSERT_EQ(a.best_so_far.size(), b.best_so_far.size());
  for (std::size_t i = 0; i < a.best_so_far.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.best_so_far[i], b.best_so_far[i]) << i;
  }
  EXPECT_EQ(a.best, b.best);
  EXPECT_DOUBLE_EQ(a.best_value, b.best_value);
}

TEST_F(FaultTest, BoResumeReproducesBestSoFar) {
  const std::string path = testing::TempDir() + "fault_bo_journal.jsonl";
  std::remove(path.c_str());
  BoConfig cfg;
  cfg.initial_design = 3;
  cfg.iterations = 3;
  cfg.batch_k = 2;
  cfg.candidate_pool = 32;
  cfg.seed = 5;
  cfg.journal_path = path;

  int calls_full = 0;
  const SearchTrace full =
      run_bayes_opt(toy_problem(8, &calls_full), cfg);
  ASSERT_EQ(full.observations.size(), 9u);
  EXPECT_EQ(calls_full, 9);
  EXPECT_EQ(full.replayed, 0u);

  // Restart against the complete journal: zero live evaluations.
  int calls_replay = 0;
  const SearchTrace replayed =
      run_bayes_opt(toy_problem(8, &calls_replay), cfg);
  EXPECT_EQ(calls_replay, 0);
  EXPECT_EQ(replayed.replayed, 9u);
  expect_same_trace(full, replayed);

  // Kill simulation: keep 4 journal rows plus a torn fragment, restart.
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 9u);
  {
    std::ofstream out(path, std::ios::trunc);
    for (int i = 0; i < 4; ++i) out << lines[static_cast<std::size_t>(i)]
                                    << "\n";
    out << "{\"idx\": 4, \"code\": [1, 0";  // torn mid-write
  }
  int calls_resume = 0;
  const SearchTrace resumed =
      run_bayes_opt(toy_problem(8, &calls_resume), cfg);
  EXPECT_EQ(calls_resume, 5);
  EXPECT_EQ(resumed.replayed, 4u);
  expect_same_trace(full, resumed);

  // The repaired journal is complete again after the resumed run.
  EXPECT_EQ(SearchJournal::replay(path).size(), 9u);
  std::remove(path.c_str());
}

TEST_F(FaultTest, RandomSearchResumeReproducesBestSoFar) {
  const std::string path = testing::TempDir() + "fault_rs_journal.jsonl";
  std::remove(path.c_str());
  RsConfig cfg;
  cfg.evaluations = 10;
  cfg.seed = 9;
  cfg.journal_path = path;

  int calls_full = 0;
  const SearchTrace full =
      run_random_search(toy_problem(6, &calls_full), cfg);
  EXPECT_EQ(calls_full, 10);

  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 10u);
  {
    std::ofstream out(path, std::ios::trunc);
    for (int i = 0; i < 6; ++i) out << lines[static_cast<std::size_t>(i)]
                                    << "\n";
  }
  int calls_resume = 0;
  const SearchTrace resumed =
      run_random_search(toy_problem(6, &calls_resume), cfg);
  EXPECT_EQ(calls_resume, 4);
  EXPECT_EQ(resumed.replayed, 6u);
  expect_same_trace(full, resumed);
  std::remove(path.c_str());
}

TEST_F(FaultTest, NonFiniteObjectiveIsPenalizedNotPropagated) {
  // An objective that returns NaN for a third of the space: the GP must
  // only ever see finite targets, and those points must be marked failed.
  BoProblem p = toy_problem(4, nullptr);
  p.objective = [](const EncodingVec& code) {
    if (code[0] == 1) return std::nan("");
    double v = 0.0;
    for (int c : code) v += (2 - c) * 0.5;
    return v;
  };
  BoConfig cfg;
  cfg.initial_design = 4;
  cfg.iterations = 4;
  cfg.batch_k = 2;
  cfg.candidate_pool = 32;
  cfg.seed = 3;
  const SearchTrace trace = run_bayes_opt(p, cfg);
  ASSERT_EQ(trace.observations.size(), 12u);
  int failed = 0;
  for (const auto& obs : trace.observations) {
    ASSERT_TRUE(std::isfinite(obs.value));
    if (obs.failed) {
      ++failed;
      EXPECT_DOUBLE_EQ(obs.value, cfg.nonfinite_penalty);
      EXPECT_EQ(obs.code[0], 1);
    }
  }
  EXPECT_TRUE(std::isfinite(trace.best_value));
}

// --- GP robustness ------------------------------------------------------------

TEST_F(FaultTest, GpJitterRetriesAreCountedAndSucceed) {
  Telemetry::reset();
  Telemetry::set_enabled(true);
  // Duplicate inputs with zero observation noise make K exactly singular;
  // only the jitter escalation can factor it.
  GaussianProcess gp(std::make_shared<RbfKernel>(1.0, 1.0), 0.0);
  gp.fit({{0.0}, {0.0}, {1.0}}, {1.0, 1.0, 2.0});
  const auto counters = Telemetry::counters();
  Telemetry::set_enabled(false);
  EXPECT_TRUE(gp.fitted());
  const auto it = counters.find("gp.jitter_retries");
  ASSERT_NE(it, counters.end());
  EXPECT_GE(it->second, 1.0);
  // Predictions from the jittered fit stay sane.
  const GpPrediction pred = gp.predict({0.5});
  EXPECT_TRUE(std::isfinite(pred.mean));
  EXPECT_GE(pred.variance, 0.0);
}

TEST_F(FaultTest, GpFallsBackToPriorInsteadOfThrowing) {
  // Non-finite features poison every kernel entry; no jitter can fix
  // that. fit() must degrade to the prior, not throw mid-search.
  GaussianProcess gp(std::make_shared<RbfKernel>(1.0, 1.0), 1e-4);
  const double bad = std::nan("");
  EXPECT_NO_THROW(gp.fit({{bad}, {0.0}}, {1.0, 2.0}));
  EXPECT_FALSE(gp.fitted());
  const GpPrediction pred = gp.predict({0.5});
  EXPECT_DOUBLE_EQ(pred.mean, 0.0);
  EXPECT_GT(pred.variance, 0.0);
}

TEST_F(FaultTest, GpAutoLengthscaleSurvivesDegenerateData) {
  const std::vector<std::vector<double>> x{{std::nan("")}, {0.0}};
  const std::vector<double> y{1.0, 2.0};
  GaussianProcess gp = GaussianProcess::fit_best_lengthscale(
      x, y, {0.5, 1.0, 2.0}, 1.0, 1e-4);
  EXPECT_FALSE(gp.fitted());
  EXPECT_TRUE(std::isfinite(gp.predict({0.0}).mean));
}

}  // namespace
}  // namespace snnskip
