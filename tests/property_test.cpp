// Property-based tests: invariants that must hold for EVERY admissible
// topology, checked over seeded random samples of the search spaces —
// shapes, gradient flow, spike binarity, firing-rate bounds, MAC
// monotonicity, weight-store round trips, and search-trace consistency.

#include <gtest/gtest.h>

#include <cmath>

#include "core/adapter.h"
#include "core/evaluator.h"
#include "core/search_space.h"
#include "graph/mac_counter.h"
#include "models/zoo.h"
#include "nn/loss.h"
#include "train/evaluate.h"
#include "train/trainer.h"
#include "train/weight_store.h"

namespace snnskip {
namespace {

ModelConfig prop_model_cfg(std::uint64_t seed) {
  ModelConfig cfg;
  cfg.width = 4;
  cfg.in_channels = 2;
  cfg.num_classes = 10;
  cfg.max_timesteps = 3;
  cfg.seed = seed;
  return cfg;
}

struct PropCase {
  std::string model;
  std::uint64_t seed;
};

void PrintTo(const PropCase& c, std::ostream* os) {
  *os << c.model << "/seed" << c.seed;
}

class RandomTopology : public ::testing::TestWithParam<PropCase> {
 protected:
  // A random admissible candidate for the parameterized model family.
  std::vector<Adjacency> random_adjacencies(const ModelConfig& cfg) {
    const SearchSpace space(model_block_specs(GetParam().model, cfg));
    Rng rng(GetParam().seed);
    return space.decode(space.sample(rng));
  }
};

TEST_P(RandomTopology, ForwardShapeIsAlwaysLogitsShaped) {
  const ModelConfig cfg = prop_model_cfg(GetParam().seed);
  Network net =
      build_model(GetParam().model, cfg, random_adjacencies(cfg));
  Rng rng(GetParam().seed + 1);
  Tensor x = Tensor::randn(Shape{2, 2, 16, 16}, rng);
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(net.forward(x, false).shape(), (Shape{2, 10}));
  }
  net.reset_state();
}

TEST_P(RandomTopology, BackwardShapeMatchesInputAndGradsFlow) {
  const ModelConfig cfg = prop_model_cfg(GetParam().seed);
  Network net =
      build_model(GetParam().model, cfg, random_adjacencies(cfg));
  Rng rng(GetParam().seed + 2);
  Tensor x = Tensor::rand(Shape{2, 2, 16, 16}, rng, 0.f, 2.f);

  auto params = net.parameters();
  for (Parameter* p : params) p->zero_grad();
  net.reset_state();
  // Two unrolled steps, then BPTT.
  net.forward(x, true);
  Tensor out = net.forward(x, true);
  Tensor g = Tensor::randn(out.shape(), rng);
  Tensor gx2 = net.backward(g);
  Tensor gx1 = net.backward(g);
  net.reset_state();
  EXPECT_EQ(gx1.shape(), x.shape());
  EXPECT_EQ(gx2.shape(), x.shape());

  // At least some parameter gradient must be non-zero (gradients flow
  // through the surrogate path).
  double grad_mass = 0.0;
  for (Parameter* p : params) {
    for (std::int64_t i = 0; i < p->grad.numel(); ++i) {
      grad_mass += std::abs(p->grad[static_cast<std::size_t>(i)]);
    }
  }
  EXPECT_GT(grad_mass, 0.0);
}

TEST_P(RandomTopology, SpikingOutputsOfLifLayersAreBinary) {
  const ModelConfig cfg = prop_model_cfg(GetParam().seed);
  Network net =
      build_model(GetParam().model, cfg, random_adjacencies(cfg));
  FiringRateRecorder rec;
  net.set_recorder(&rec);
  Rng rng(GetParam().seed + 3);
  Tensor x = Tensor::rand(Shape{2, 2, 16, 16}, rng, 0.f, 2.f);
  for (int t = 0; t < 3; ++t) net.forward(x, false);
  net.reset_state();
  // Firing rate is a probability.
  EXPECT_GE(rec.overall_rate(), 0.0);
  EXPECT_LE(rec.overall_rate(), 1.0);
  for (const auto& [layer, rate] : rec.per_layer_rates()) {
    EXPECT_GE(rate, 0.0) << layer;
    EXPECT_LE(rate, 1.0) << layer;
  }
}

TEST_P(RandomTopology, MacsArePositiveAndShapeConsistent) {
  const ModelConfig cfg = prop_model_cfg(GetParam().seed);
  Network net =
      build_model(GetParam().model, cfg, random_adjacencies(cfg));
  const Shape in{1, 2, 16, 16};
  const MacReport report = count_macs(net, in);
  EXPECT_GT(report.total, 0);
  EXPECT_EQ(net.output_shape(in), (Shape{1, 10}));
}

TEST_P(RandomTopology, WeightStoreRoundTripIsExact) {
  const ModelConfig cfg = prop_model_cfg(GetParam().seed);
  const auto adjs = random_adjacencies(cfg);
  Network a = build_model(GetParam().model, cfg, adjs);
  WeightStore store(GetParam().seed);
  store.store_from(a);

  ModelConfig cfg2 = cfg;
  cfg2.seed ^= 0xBEEF;
  Network b = build_model(GetParam().model, cfg2, adjs);
  store.load_into(b);
  auto pa = a.parameters();
  auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_FLOAT_EQ(Tensor::max_abs_diff(pa[i]->value, pb[i]->value), 0.f)
        << pa[i]->name;
  }
}

TEST_P(RandomTopology, TrainStepIsFiniteAndDeterministic) {
  const ModelConfig cfg = prop_model_cfg(GetParam().seed);
  SyntheticConfig dc;
  dc.height = 16;
  dc.width = 16;
  dc.timesteps = 3;
  dc.train_size = 10;
  dc.val_size = 10;
  dc.test_size = 10;
  dc.seed = GetParam().seed;
  const DatasetBundle data = make_datasets("cifar10-dvs", dc);

  auto run_once = [&]() {
    Network net =
        build_model(GetParam().model, cfg, random_adjacencies(cfg));
    DataLoader loader(*data.train, 10, false, 1);
    loader.start_epoch(0);
    Batch batch;
    EXPECT_TRUE(loader.next(batch));
    EventEncoder enc(3, 2);
    auto params = net.parameters();
    Sgd opt(params, 0.05f, 0.9f, 0.f);
    return train_batch(net, enc, batch, 3, opt, 5.f);
  };
  const double l1 = run_once();
  const double l2 = run_once();
  EXPECT_TRUE(std::isfinite(l1));
  EXPECT_EQ(l1, l2);  // full determinism: same seeds, same loss
}

std::vector<PropCase> prop_cases() {
  std::vector<PropCase> cases;
  for (const auto& model : model_names()) {
    for (std::uint64_t seed : {101ULL, 202ULL, 303ULL}) {
      cases.push_back(PropCase{model, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllModelsSeeds, RandomTopology,
                         ::testing::ValuesIn(prop_cases()));

// --- DSC monotonicity (property over the whole slot range) ------------------

TEST(Property, MacsMonotoneInDscEdgeCount) {
  // Adding any DSC edge to any topology can only add MACs.
  const ModelConfig cfg = prop_model_cfg(7);
  const auto specs = single_block_specs(cfg);
  const SearchSpace space(specs);
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    EncodingVec code = space.sample(rng);
    // Find a slot currently not DSC and flip it to DSC.
    for (std::size_t k = 0; k < code.size(); ++k) {
      if (code[k] == 1 || !space.value_allowed(k, 1)) continue;
      EncodingVec denser = code;
      denser[k] = 1;
      Network a = build_model("single_block", cfg, space.decode(code));
      Network b = build_model("single_block", cfg, space.decode(denser));
      const Shape in{1, 2, 16, 16};
      EXPECT_GT(count_macs(b, in).total, count_macs(a, in).total);
      break;
    }
  }
}

TEST(Property, SearchTracesAreInternallyConsistent) {
  // For any trace: best_so_far is the running min of observation values
  // and best_value equals its final entry.
  BoProblem p;
  p.sample = [](Rng& rng) {
    EncodingVec code(5);
    for (auto& v : code) v = static_cast<int>(rng.uniform_int(3ULL));
    return code;
  };
  p.featurize = [](const EncodingVec& c) { return one_hot_features(c); };
  p.objective = [](const EncodingVec& c) {
    double v = 0.0;
    for (std::size_t i = 0; i < c.size(); ++i) v += c[i] * (i + 1.0);
    return v;
  };
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    BoConfig cfg;
    cfg.seed = seed;
    cfg.iterations = 5;
    const SearchTrace trace = run_bayes_opt(p, cfg);
    double running = std::numeric_limits<double>::infinity();
    ASSERT_EQ(trace.best_so_far.size(), trace.observations.size());
    for (std::size_t i = 0; i < trace.observations.size(); ++i) {
      running = std::min(running, trace.observations[i].value);
      EXPECT_DOUBLE_EQ(trace.best_so_far[i], running);
    }
    EXPECT_DOUBLE_EQ(trace.best_value, running);
  }
}

TEST(Property, EncodeDecodeIsIdentityOnSamples) {
  for (const auto& model : model_names()) {
    const ModelConfig cfg = prop_model_cfg(9);
    const SearchSpace space(model_block_specs(model, cfg),
                            /*include_recurrent=*/true);
    Rng rng(11);
    for (int trial = 0; trial < 10; ++trial) {
      const EncodingVec code = space.sample(rng);
      EXPECT_EQ(space.encode(space.decode(code)), code) << model;
    }
  }
}

}  // namespace
}  // namespace snnskip
