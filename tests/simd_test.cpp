// Scalar-vs-AVX2 equivalence for the runtime-dispatched kernels (ISSUE 9).
//
// The dispatch contract (DESIGN.md §5j): Scalar and Avx2 tables are
// bit-identical — the AVX2 paths preserve per-element accumulation order
// and are compiled unfused — so every comparison here is exact memcmp,
// deliberately over geometries that are NOT multiples of the vector width
// or the tile edges. Avx2Fma fuses multiply+add and is only required to
// agree within tolerance.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "infer/compile.h"
#include "infer/engine.h"
#include "models/zoo.h"
#include "tensor/cpu_features.h"
#include "tensor/epilogue.h"
#include "tensor/gemm.h"
#include "tensor/kernel_config.h"
#include "tensor/simd_ops.h"
#include "tensor/spike_csr.h"
#include "tensor/spike_kernels.h"
#include "tensor/spike_packed.h"
#include "tensor/workspace.h"
#include "util/rng.h"

namespace snnskip {
namespace {

bool avx2_available() { return simd_avx2_compiled() && cpu_has_avx2(); }

#define SKIP_WITHOUT_AVX2()                                            \
  if (!avx2_available()) {                                             \
    GTEST_SKIP() << "AVX2 not compiled in or not supported by host";   \
  }

/// Restore the process-wide SIMD level and kernel config after each test.
class SimdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = active_simd();
    saved_cfg_ = kernel_config();
  }
  void TearDown() override {
    set_active_simd(saved_level_);
    set_kernel_config(saved_cfg_);
  }

 private:
  SimdLevel saved_level_ = SimdLevel::Scalar;
  KernelConfig saved_cfg_{};
};

std::vector<float> randu(std::int64_t n, std::uint64_t seed,
                         float lo = -1.f, float hi = 1.f) {
  Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (float& x : v) x = rng.uniform(lo, hi);
  return v;
}

std::vector<float> spikes(std::int64_t n, std::uint64_t seed, float density) {
  Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (float& x : v) x = rng.uniform(0.f, 1.f) < density ? 1.f : 0.f;
  return v;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// ---- GEMM ------------------------------------------------------------------

struct GemmCase {
  std::int64_t m, n, k;
};

// Odd shapes: below one tile, straddling tile edges, tails in every
// dimension, and one K larger than the smallest kc choice.
const GemmCase kGemmCases[] = {
    {1, 1, 1},  {3, 5, 7},   {7, 17, 9},   {8, 8, 8},
    {6, 16, 4}, {13, 31, 33}, {5, 16, 64}, {33, 47, 131},
};

class GemmBitIdentity : public SimdTest,
                        public ::testing::WithParamInterface<int> {};

TEST_P(GemmBitIdentity, AllKernelsAllTiles) {
  SKIP_WITHOUT_AVX2();
  const GemmCase gc = kGemmCases[GetParam()];
  const auto a = randu(gc.m * gc.k, 1);
  const auto b = randu(gc.k * gc.n, 2);
  const auto at = randu(gc.k * gc.m, 3);   // (k, m) operand for gemm_tn
  const auto bt = randu(gc.n * gc.k, 4);   // (n, k) operand for gemm_nt
  const auto c0 = randu(gc.m * gc.n, 5);

  for (int tile = 0; tile < simd::kNumGemmTiles; ++tile) {
    for (int kc : {64, 128}) {
      KernelConfig cfg = kernel_config();
      cfg.gemm_tile = tile;
      cfg.gemm_kc = kc;
      set_kernel_config(cfg);

      auto run = [&](SimdLevel lvl, std::vector<float>* nn,
                     std::vector<float>* tn, std::vector<float>* nt) {
        ASSERT_EQ(set_active_simd(lvl), lvl);
        *nn = c0;
        gemm(gc.m, gc.n, gc.k, 1.1f, a.data(), b.data(), 0.7f, nn->data());
        *tn = c0;
        gemm_tn(gc.m, gc.n, gc.k, 0.9f, at.data(), b.data(), 0.3f,
                tn->data());
        *nt = c0;
        gemm_nt(gc.m, gc.n, gc.k, 1.3f, a.data(), bt.data(), 1.f,
                nt->data());
      };
      std::vector<float> s_nn, s_tn, s_nt, v_nn, v_tn, v_nt;
      run(SimdLevel::Scalar, &s_nn, &s_tn, &s_nt);
      run(SimdLevel::Avx2, &v_nn, &v_tn, &v_nt);
      EXPECT_TRUE(bitwise_equal(s_nn, v_nn))
          << "gemm tile=" << tile << " kc=" << kc;
      EXPECT_TRUE(bitwise_equal(s_tn, v_tn))
          << "gemm_tn tile=" << tile << " kc=" << kc;
      EXPECT_TRUE(bitwise_equal(s_nt, v_nt))
          << "gemm_nt tile=" << tile << " kc=" << kc;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmBitIdentity,
                         ::testing::Range(0, 8));

TEST_F(SimdTest, GemmFmaWithinTolerance) {
  SKIP_WITHOUT_AVX2();
  if (max_simd_level() < SimdLevel::Avx2Fma) {
    GTEST_SKIP() << "host has no FMA";
  }
  const std::int64_t m = 33, n = 47, k = 65;
  const auto a = randu(m * k, 11);
  const auto b = randu(k * n, 12);
  std::vector<float> cs(static_cast<std::size_t>(m * n), 0.f);
  std::vector<float> cf = cs;
  ASSERT_EQ(set_active_simd(SimdLevel::Scalar), SimdLevel::Scalar);
  gemm(m, n, k, 1.f, a.data(), b.data(), 0.f, cs.data());
  ASSERT_EQ(set_active_simd(SimdLevel::Avx2Fma), SimdLevel::Avx2Fma);
  gemm(m, n, k, 1.f, a.data(), b.data(), 0.f, cf.data());
  for (std::size_t i = 0; i < cs.size(); ++i) {
    EXPECT_NEAR(cs[i], cf[i], 1e-4f * (1.f + std::fabs(cs[i])));
  }
}

// ---- Transposes (satellite: direct edge-tile coverage) ---------------------

void naive_transpose(const std::vector<float>& src, std::int64_t rows,
                     std::int64_t cols, std::vector<float>* dst) {
  dst->assign(static_cast<std::size_t>(rows * cols), 0.f);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      (*dst)[static_cast<std::size_t>(c * rows + r)] =
          src[static_cast<std::size_t>(r * cols + c)];
    }
  }
}

TEST_F(SimdTest, TransposeEdgeTilesExact) {
  // Correctness at every tile size over shapes that are NOT multiples of
  // any tile edge (1x1, sub-tile, straddling, plus an 8-multiple).
  const std::int64_t shapes[][2] = {{1, 1},  {3, 70},  {33, 17},
                                    {31, 65}, {40, 104}, {129, 7}};
  for (const auto& s : shapes) {
    const std::int64_t rows = s[0], cols = s[1];
    const auto src = randu(rows * cols, 21);
    std::vector<float> want;
    naive_transpose(src, rows, cols, &want);
    for (int tile : {16, 32, 64, 128}) {
      KernelConfig cfg = kernel_config();
      cfg.transpose_tile = tile;
      set_kernel_config(cfg);
      std::vector<float> got(want.size(), 0.f);
      transpose_panel(src.data(), rows, cols, got.data());
      EXPECT_TRUE(bitwise_equal(want, got))
          << rows << "x" << cols << " tile=" << tile;
      // transpose_add on a non-zero destination.
      std::vector<float> acc = randu(rows * cols, 22);
      std::vector<float> acc_want = acc;
      for (std::size_t i = 0; i < want.size(); ++i) acc_want[i] += want[i];
      transpose_add_panel(src.data(), rows, cols, acc.data());
      EXPECT_TRUE(bitwise_equal(acc_want, acc))
          << "add " << rows << "x" << cols << " tile=" << tile;
    }
  }
}

TEST_F(SimdTest, TransposeScalarVsAvx2Bitwise) {
  SKIP_WITHOUT_AVX2();
  const std::int64_t rows = 83, cols = 59;
  const auto src = randu(rows * cols, 23);
  for (int tile : {16, 32}) {
    KernelConfig cfg = kernel_config();
    cfg.transpose_tile = tile;
    set_kernel_config(cfg);
    std::vector<float> s(static_cast<std::size_t>(rows * cols), 0.f);
    std::vector<float> v = s;
    ASSERT_EQ(set_active_simd(SimdLevel::Scalar), SimdLevel::Scalar);
    transpose_panel(src.data(), rows, cols, s.data());
    ASSERT_EQ(set_active_simd(SimdLevel::Avx2), SimdLevel::Avx2);
    transpose_panel(src.data(), rows, cols, v.data());
    EXPECT_TRUE(bitwise_equal(s, v)) << "tile=" << tile;
  }
}

// ---- Event-driven spike kernels --------------------------------------------

struct SpikeFixture {
  ConvGeometry g{/*in_c=*/3, /*in_h=*/7, /*in_w=*/5, /*kernel=*/3,
                 /*stride=*/1, /*pad=*/1};
  std::int64_t o_c = 5;
  std::int64_t n_img = 2;
  std::vector<float> in, weight, bias, gout;
  SpikeCsr csr, gcsr;

  SpikeFixture() {
    const std::int64_t numel = g.in_c * g.in_h * g.in_w;
    in = spikes(n_img * numel, 31, 0.2f);
    csr.build(in.data(), n_img, numel);
    weight = randu(o_c * g.col_rows(), 32);
    bias = randu(o_c, 33);
    gout = randu(n_img * o_c * g.col_cols(), 34);
    // Sparsify the output gradient so gcsr is a genuine event list.
    for (std::size_t i = 0; i < gout.size(); ++i) {
      if (i % 3 != 0) gout[i] = 0.f;
    }
    gcsr.build(gout.data(), n_img, o_c * g.col_cols());
  }
};

TEST_F(SimdTest, SpikeConvKernelsBitIdentical) {
  SKIP_WITHOUT_AVX2();
  SpikeFixture fx;
  const std::int64_t out_n = fx.n_img * fx.o_c * fx.g.col_cols();
  const std::int64_t in_n = fx.n_img * fx.g.in_c * fx.g.in_h * fx.g.in_w;
  auto run = [&](SimdLevel lvl, std::vector<float>* fwd,
                 std::vector<float>* gw, std::vector<float>* gin) {
    ASSERT_EQ(set_active_simd(lvl), lvl);
    fwd->assign(static_cast<std::size_t>(out_n), 0.f);
    spike_conv2d_forward(fx.g, fx.csr, fx.weight.data(), fx.bias.data(),
                         fx.o_c, fwd->data(), Workspace::tls());
    gw->assign(fx.weight.size(), 0.25f);
    spike_conv2d_backward_weight(fx.g, fx.csr, fx.gout.data(), fx.o_c,
                                 gw->data(), Workspace::tls());
    gin->assign(static_cast<std::size_t>(in_n), 0.f);
    spike_conv2d_backward_input(fx.g, fx.gcsr, fx.weight.data(), fx.o_c,
                                gin->data(), Workspace::tls());
  };
  std::vector<float> sf, sw, si, vf, vw, vi;
  run(SimdLevel::Scalar, &sf, &sw, &si);
  run(SimdLevel::Avx2, &vf, &vw, &vi);
  EXPECT_TRUE(bitwise_equal(sf, vf)) << "conv2d forward";
  EXPECT_TRUE(bitwise_equal(sw, vw)) << "conv2d backward weight";
  EXPECT_TRUE(bitwise_equal(si, vi)) << "conv2d backward input";
}

TEST_F(SimdTest, SpikeLinearKernelsBitIdentical) {
  SKIP_WITHOUT_AVX2();
  const std::int64_t n_img = 3, in_f = 37, out_f = 19;
  const auto in = spikes(n_img * in_f, 41, 0.25f);
  SpikeCsr csr;
  csr.build(in.data(), n_img, in_f);
  const auto weight = randu(out_f * in_f, 42);
  const auto bias = randu(out_f, 43);
  auto gout = randu(n_img * out_f, 44);
  for (std::size_t i = 0; i < gout.size(); ++i) {
    if (i % 4 != 1) gout[i] = 0.f;
  }
  SpikeCsr gcsr;
  gcsr.build(gout.data(), n_img, out_f);

  auto run = [&](SimdLevel lvl, std::vector<float>* fwd,
                 std::vector<float>* gw, std::vector<float>* gin) {
    ASSERT_EQ(set_active_simd(lvl), lvl);
    fwd->assign(static_cast<std::size_t>(n_img * out_f), 0.f);
    spike_linear_forward(csr, weight.data(), bias.data(), out_f, fwd->data(),
                         Workspace::tls());
    gw->assign(weight.size(), 0.5f);
    spike_linear_backward_weight(csr, gout.data(), out_f, gw->data(),
                                 Workspace::tls());
    gin->assign(static_cast<std::size_t>(n_img * in_f), 0.f);
    spike_linear_backward_input(gcsr, weight.data(), in_f, gin->data());
  };
  std::vector<float> sf, sw, si, vf, vw, vi;
  run(SimdLevel::Scalar, &sf, &sw, &si);
  run(SimdLevel::Avx2, &vf, &vw, &vi);
  EXPECT_TRUE(bitwise_equal(sf, vf)) << "linear forward";
  EXPECT_TRUE(bitwise_equal(sw, vw)) << "linear backward weight";
  EXPECT_TRUE(bitwise_equal(si, vi)) << "linear backward input";
}

TEST_F(SimdTest, SpikeDepthwiseKernelsBitIdentical) {
  SKIP_WITHOUT_AVX2();
  ConvGeometry g{/*in_c=*/4, /*in_h=*/9, /*in_w=*/7, /*kernel=*/3,
                 /*stride=*/2, /*pad=*/1};
  const std::int64_t n_img = 2;
  const std::int64_t numel = g.in_c * g.in_h * g.in_w;
  const auto in = spikes(n_img * numel, 51, 0.3f);
  SpikeCsr csr;
  csr.build(in.data(), n_img, numel);
  const auto weight = randu(g.in_c * g.kernel * g.kernel, 52);
  const auto bias = randu(g.in_c, 53);
  const auto gout = randu(n_img * g.in_c * g.col_cols(), 54);

  auto run = [&](SimdLevel lvl, std::vector<float>* fwd,
                 std::vector<float>* gw) {
    ASSERT_EQ(set_active_simd(lvl), lvl);
    fwd->assign(static_cast<std::size_t>(n_img * g.in_c * g.col_cols()),
                0.f);
    spike_depthwise_forward(g, csr, weight.data(), bias.data(), fwd->data());
    gw->assign(weight.size(), 0.125f);
    spike_depthwise_backward_weight(g, csr, gout.data(), gw->data());
  };
  std::vector<float> sf, sw, vf, vw;
  run(SimdLevel::Scalar, &sf, &sw);
  run(SimdLevel::Avx2, &vf, &vw);
  EXPECT_TRUE(bitwise_equal(sf, vf)) << "depthwise forward";
  EXPECT_TRUE(bitwise_equal(sw, vw)) << "depthwise backward weight";
}

TEST_F(SimdTest, PackedTermKernelsBitIdentical) {
  SKIP_WITHOUT_AVX2();
  ConvGeometry g{/*in_c=*/3, /*in_h=*/7, /*in_w=*/5, /*kernel=*/3,
                 /*stride=*/1, /*pad=*/1};
  const std::int64_t numel = g.in_c * g.in_h * g.in_w;
  const std::int64_t o_c = 5;
  const auto in = spikes(numel, 61, 0.3f);
  std::vector<std::uint64_t> words(
      static_cast<std::size_t>(packed_words(numel)), 0u);
  ASSERT_GE(spike_pack(in.data(), numel, words.data()), 0);
  // Transposed weight ((c,ky,kx), o) layout per the packed-term contract.
  const auto wt = randu(g.col_rows() * o_c, 62);
  const auto dwweight = randu(g.in_c * g.kernel * g.kernel, 63);

  auto run = [&](SimdLevel lvl, std::vector<float>* outt,
                 std::vector<float>* acc, std::int64_t* ops1,
                 std::int64_t* ops2) {
    ASSERT_EQ(set_active_simd(lvl), lvl);
    outt->assign(static_cast<std::size_t>(g.col_cols() * o_c), 0.f);
    *ops1 = spike_packed_conv2d_term(g, g.in_c, words.data(), nullptr,
                                     wt.data(), o_c, outt->data());
    acc->assign(static_cast<std::size_t>(g.in_c * g.col_cols()), 0.f);
    *ops2 = spike_packed_depthwise_term(g, g.in_c, words.data(), nullptr,
                                        dwweight.data(), acc->data());
  };
  std::vector<float> so, sa, vo, va;
  std::int64_t sops1, sops2, vops1, vops2;
  run(SimdLevel::Scalar, &so, &sa, &sops1, &sops2);
  run(SimdLevel::Avx2, &vo, &va, &vops1, &vops2);
  EXPECT_TRUE(bitwise_equal(so, vo)) << "packed conv term";
  EXPECT_TRUE(bitwise_equal(sa, va)) << "packed depthwise term";
  EXPECT_EQ(sops1, vops1);
  EXPECT_EQ(sops2, vops2);
}

// ---- Fused epilogue rows ---------------------------------------------------

TEST_F(SimdTest, LifEpilogueRowBitIdentical) {
  SKIP_WITHOUT_AVX2();
  // p=23 exercises the 8-wide vector body plus a 7-element tail; bit0=57
  // makes the spike mask straddle a 64-bit word boundary.
  const std::int64_t p = 23;
  const std::int64_t bit0 = 57;
  auto acc = randu(p, 71, -2.f, 2.f);
  acc[4] = std::numeric_limits<float>::quiet_NaN();  // NaN never spikes
  const auto m0 = randu(p, 72, 0.f, 1.f);

  auto run = [&](SimdLevel lvl, std::vector<float>* m,
                 std::vector<float>* dst, std::vector<std::uint64_t>* wbits,
                 std::int64_t* spk) {
    ASSERT_EQ(set_active_simd(lvl), lvl);
    *m = m0;
    dst->assign(static_cast<std::size_t>(p), -7.f);
    wbits->assign(4, 0u);
    *spk = lif_epilogue_row(p, acc.data(), /*use_scale=*/1, /*scale=*/1.1f,
                            /*bias=*/0.05f, /*beta=*/0.9f, /*theta=*/1.f,
                            m->data(), dst->data(), wbits->data(), bit0);
  };
  std::vector<float> sm, sd, vm, vd;
  std::vector<std::uint64_t> swb, vwb;
  std::int64_t sspk, vspk;
  run(SimdLevel::Scalar, &sm, &sd, &swb, &sspk);
  run(SimdLevel::Avx2, &vm, &vd, &vwb, &vspk);
  EXPECT_TRUE(bitwise_equal(sm, vm)) << "membrane";
  EXPECT_TRUE(bitwise_equal(sd, vd)) << "spikes";
  EXPECT_EQ(swb, vwb) << "packed bits";
  EXPECT_EQ(sspk, vspk);
  // The NaN lane must not have spiked on either path.
  EXPECT_EQ(sd[4], 0.f);
  EXPECT_EQ((swb[(bit0 + 4) / 64] >> ((bit0 + 4) % 64)) & 1u, 0u);
}

TEST_F(SimdTest, AffineEpilogueRowBitIdentical) {
  SKIP_WITHOUT_AVX2();
  const std::int64_t p = 19;
  auto acc = randu(p, 81, -2.f, 2.f);
  acc[3] = std::numeric_limits<float>::quiet_NaN();
  acc[7] = -0.f;
  for (int relu = 0; relu < 2; ++relu) {
    auto run = [&](SimdLevel lvl, std::vector<float>* dst) {
      ASSERT_EQ(set_active_simd(lvl), lvl);
      dst->assign(static_cast<std::size_t>(p), -3.f);
      affine_epilogue_row(p, acc.data(), /*use_scale=*/1, /*scale=*/0.8f,
                          /*bias=*/-0.1f, relu, dst->data());
    };
    std::vector<float> s, v;
    run(SimdLevel::Scalar, &s);
    run(SimdLevel::Avx2, &v);
    EXPECT_TRUE(bitwise_equal(s, v)) << "relu=" << relu;
  }
}

// ---- count_nonzero ---------------------------------------------------------

TEST_F(SimdTest, CountNonzeroBitIdentical) {
  SKIP_WITHOUT_AVX2();
  auto v = randu(1003, 91);
  for (std::size_t i = 0; i < v.size(); i += 3) v[i] = 0.f;
  v[5] = -0.f;                                      // zero: not counted
  v[6] = std::numeric_limits<float>::quiet_NaN();   // != 0: counted
  ASSERT_EQ(set_active_simd(SimdLevel::Scalar), SimdLevel::Scalar);
  const std::int64_t s = count_nonzero(v.data(), v.size());
  ASSERT_EQ(set_active_simd(SimdLevel::Avx2), SimdLevel::Avx2);
  const std::int64_t a = count_nonzero(v.data(), v.size());
  EXPECT_EQ(s, a);
}

// ---- Whole-engine step across a dispatch toggle ----------------------------

TEST_F(SimdTest, CompiledEngineBitIdenticalAcrossToggle) {
  SKIP_WITHOUT_AVX2();
  ModelConfig mc;
  mc.in_channels = 2;
  mc.width = 4;
  mc.max_timesteps = 4;
  mc.seed = 13;
  Network net =
      build_model("single_block", mc, default_adjacencies("single_block", mc));
  const Shape in_shape{1, 2, 8, 8};
  Rng warm(7);
  net.reset_state();
  for (int t = 0; t < 4; ++t) {
    (void)net.forward(Tensor::bernoulli(in_shape, warm, 0.3f), true);
  }
  net.reset_state();
  auto plan = infer::compile(net, in_shape);

  std::vector<Tensor> xs;
  Rng rng(23);
  for (int t = 0; t < 4; ++t) {
    xs.push_back(Tensor::bernoulli(in_shape, rng, 0.2f));
  }
  auto run = [&](SimdLevel lvl) {
    EXPECT_EQ(set_active_simd(lvl), lvl);
    infer::Engine eng(plan);
    std::vector<float> flat;
    Tensor out;
    for (const Tensor& x : xs) {
      eng.step(x, &out);
      flat.insert(flat.end(), out.data(), out.data() + out.numel());
    }
    return flat;
  };
  const auto s = run(SimdLevel::Scalar);
  const auto v = run(SimdLevel::Avx2);
  EXPECT_TRUE(bitwise_equal(s, v));
}

}  // namespace
}  // namespace snnskip
