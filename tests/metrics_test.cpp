// Tests for metrics aggregation, energy model and report rendering.

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/energy.h"
#include "metrics/metrics.h"
#include "metrics/report.h"

namespace snnskip {
namespace {

TEST(RunningStat, MeanMatchesDirect) {
  RunningStat stat;
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 10.0};
  for (double x : xs) stat.add(x);
  EXPECT_EQ(stat.count(), 5u);
  EXPECT_NEAR(stat.mean(), 4.0, 1e-12);
}

TEST(RunningStat, StdMatchesDirect) {
  RunningStat stat;
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) stat.add(x);
  // Sample std of this classic set is ~2.138.
  EXPECT_NEAR(stat.stddev(), std::sqrt(32.0 / 7.0), 1e-9);
}

TEST(RunningStat, SingleSampleHasZeroStd) {
  RunningStat stat;
  stat.add(3.0);
  EXPECT_DOUBLE_EQ(stat.stddev(), 0.0);
}

TEST(VectorStats, MeanAndStd) {
  const std::vector<double> v{1.0, 3.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 2.0);
  EXPECT_NEAR(stddev_of(v), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev_of({5.0}), 0.0);
}

TEST(Formatting, PctWithStd) {
  EXPECT_EQ(pct_with_std(0.9034, 0.002), "90.34 (+/- 0.20)");
}

TEST(Formatting, Pct) {
  EXPECT_EQ(pct(0.156), "15.60%");
}

TEST(EnergyModel, AnnEnergyScalesWithMacs) {
  EnergyModel m;
  EXPECT_DOUBLE_EQ(m.ann_energy_pj(1000), 4600.0);
}

TEST(EnergyModel, SnnEnergyScalesWithRateAndTime) {
  EnergyModel m;
  // 1000 macs/step * 10% rate * 8 steps * 0.9 pJ.
  EXPECT_DOUBLE_EQ(m.snn_energy_pj(1000, 0.1, 8), 720.0);
  EXPECT_DOUBLE_EQ(m.snn_energy_pj(1000, 0.0, 8), 0.0);
}

TEST(EnergyModel, SparseSnnBeatsAnn) {
  // The SNN advantage claimed in the paper's intro: at ~10% firing rate and
  // moderate T the accumulate-only cost undercuts the ANN MAC cost.
  EnergyModel m;
  EXPECT_LT(m.snn_energy_pj(1000, 0.11, 8), m.ann_energy_pj(1000));
}

TEST(TextTable, RendersAlignedTable) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "23456"});
  const std::string s = table.str();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("23456"), std::string::npos);
  // Four rules + header + 2 rows = 6 lines... verify line count is sane.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 6);
}

}  // namespace
}  // namespace snnskip
