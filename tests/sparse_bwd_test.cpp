// Event-driven sparse BPTT backward (ISSUE 4): the sparse dW/dX kernels
// promise BIT-FOR-BIT equality with the dense gemm/direct-loop paths, at
// any thread-count partitioning. These tests pin that contract:
//
//   - Conv2d / Linear / DepthwiseConv2d sparse-vs-dense gradient equality
//     over random spike tensors and geometries (stride 2, 1x1, no-pad)
//   - invariance under 1/2/4-way parallel_for partitions (the chunk
//     override exercises partition boundaries even on a 1-core runner)
//   - LIF/PLIF-produced surrogate gradients through a conv for all three
//     surrogates, including the Boxcar |u| == w window boundary and a
//     refractory LIF, with backward-dispatch telemetry assertions
//   - the GradDensityHint handoff and its mismatch fallback
//   - RetainedActivations accounting (CSR contexts shrink retained bytes,
//     backward/reset return to baseline)
//   - set_input_grad_needed(false): dX skipped (zeros), dW still exact

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/conv2d.h"
#include "nn/depthwise_conv2d.h"
#include "nn/linear.h"
#include "parallel/parallel_for.h"
#include "snn/lif.h"
#include "snn/plif.h"
#include "telemetry/retained.h"
#include "tensor/spike_kernels.h"
#include "util/rng.h"

namespace snnskip {
namespace {

// Save/restore the SparseExec switches around each test.
struct SparseGuard {
  bool enabled = SparseExec::enabled();
  float threshold = SparseExec::threshold();
  bool bwd = SparseExec::bwd_enabled();
  ~SparseGuard() {
    SparseExec::set_enabled(enabled);
    SparseExec::set_threshold(threshold);
    SparseExec::set_bwd_enabled(bwd);
    GradDensityHint::clear();
  }
};

struct ChunkGuard {
  explicit ChunkGuard(std::size_t k) { set_parallel_chunk_override(k); }
  ~ChunkGuard() { set_parallel_chunk_override(0); }
};

// Bernoulli(rate) mask times N(0,1): surrogate-style sparse values.
Tensor sparse_signal(const Shape& shape, Rng& rng, float rate) {
  Tensor mask = Tensor::bernoulli(shape, rng, rate);
  Tensor noise = Tensor::randn(shape, rng);
  for (std::int64_t i = 0; i < mask.numel(); ++i) {
    mask[static_cast<std::size_t>(i)] *= noise[static_cast<std::size_t>(i)];
  }
  return mask;
}

struct Grads {
  Tensor dw;
  Tensor db;
  Tensor dx;
};

// One train-mode fwd+bwd with grads zeroed first.
Grads run_step(Layer& layer, const Tensor& x, const Tensor& g) {
  layer.reset_state();
  for (Parameter* p : layer.parameters()) p->zero_grad();
  (void)layer.forward(x, /*train=*/true);
  Grads out;
  out.dx = layer.backward(g);
  auto params = layer.parameters();
  out.dw = params[0]->grad;
  if (params.size() > 1) out.db = params[1]->grad;
  return out;
}

void expect_bitwise_equal(const Grads& a, const Grads& b) {
  EXPECT_EQ(Tensor::max_abs_diff(a.dw, b.dw), 0.f);
  EXPECT_EQ(Tensor::max_abs_diff(a.dx, b.dx), 0.f);
  if (a.db.numel() > 0) {
    EXPECT_EQ(Tensor::max_abs_diff(a.db, b.db), 0.f);
  }
}

Grads dense_reference(Layer& layer, const Tensor& x, const Tensor& g) {
  SparseExec::set_enabled(false);
  Grads dense = run_step(layer, x, g);
  SparseExec::set_enabled(true);
  return dense;
}

// --- Conv2d -----------------------------------------------------------------

struct ConvCase {
  std::int64_t in_c, out_c, kernel, stride, pad, h, w, n;
  bool bias;
  float grad_rate;  // 1.0 = dense grad_out (sparse dW only, dense dX)
};

class ConvSparseBwd : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvSparseBwd, MatchesDenseBitForBit) {
  const ConvCase c = GetParam();
  SparseGuard guard;
  SparseExec::set_enabled(true);
  SparseExec::set_bwd_enabled(true);
  SparseExec::set_threshold(0.25f);

  Rng rng(101);
  Conv2d conv(c.in_c, c.out_c, c.kernel, c.stride, c.pad, c.bias, rng);
  Tensor x = Tensor::bernoulli(Shape{c.n, c.in_c, c.h, c.w}, rng, 0.1f);
  const Shape os = conv.output_shape(x.shape());
  Tensor g = c.grad_rate >= 1.f ? Tensor::randn(os, rng)
                                : sparse_signal(os, rng, c.grad_rate);

  Grads sparse = run_step(conv, x, g);
  Grads dense = dense_reference(conv, x, g);
  expect_bitwise_equal(sparse, dense);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvSparseBwd,
    ::testing::Values(
        ConvCase{3, 4, 3, 1, 1, 6, 6, 2, true, 1.f},    // dense grads
        ConvCase{3, 4, 3, 1, 1, 6, 6, 2, true, 0.1f},   // sparse grads
        ConvCase{2, 5, 3, 2, 1, 7, 7, 2, false, 0.1f},  // stride 2
        ConvCase{4, 3, 1, 1, 0, 5, 5, 1, true, 0.1f},   // 1x1 kernel
        ConvCase{2, 3, 3, 1, 0, 6, 4, 3, false, 0.1f},  // no pad, non-square
        ConvCase{5, 2, 3, 2, 0, 8, 8, 2, true, 0.05f}));

TEST(ConvSparseBwd, InvariantUnderChunkPartitions) {
  SparseGuard guard;
  SparseExec::set_enabled(true);
  SparseExec::set_bwd_enabled(true);
  SparseExec::set_threshold(0.25f);

  Rng rng(103);
  Conv2d conv(4, 6, 3, 1, 1, true, rng);
  Tensor x = Tensor::bernoulli(Shape{2, 4, 8, 8}, rng, 0.1f);
  Tensor g = sparse_signal(conv.output_shape(x.shape()), rng, 0.1f);

  Grads base = run_step(conv, x, g);  // default partitioning
  for (std::size_t k : {1u, 2u, 4u}) {
    ChunkGuard chunks(k);
    Grads got = run_step(conv, x, g);
    SCOPED_TRACE("chunks=" + std::to_string(k));
    expect_bitwise_equal(got, base);
  }
  // And the dense reference is partition-count-sensitive-free too.
  Grads dense = dense_reference(conv, x, g);
  expect_bitwise_equal(base, dense);
}

TEST(ConvSparseBwd, SkippedInputGradIsZeroAndWeightGradExact) {
  SparseGuard guard;
  SparseExec::set_enabled(true);
  SparseExec::set_bwd_enabled(true);
  SparseExec::set_threshold(0.25f);

  Rng rng(105);
  Conv2d conv(3, 4, 3, 1, 1, false, rng);
  Tensor x = Tensor::bernoulli(Shape{2, 3, 6, 6}, rng, 0.1f);
  Tensor g = sparse_signal(conv.output_shape(x.shape()), rng, 0.1f);

  Grads with_dx = dense_reference(conv, x, g);

  conv.set_input_grad_needed(false);
  Grads sparse = run_step(conv, x, g);
  EXPECT_EQ(Tensor::max_abs_diff(sparse.dw, with_dx.dw), 0.f);
  for (std::int64_t i = 0; i < sparse.dx.numel(); ++i) {
    ASSERT_EQ(sparse.dx[static_cast<std::size_t>(i)], 0.f);
  }
}

// --- Linear -----------------------------------------------------------------

TEST(LinearSparseBwd, MatchesDenseBitForBit) {
  SparseGuard guard;
  SparseExec::set_enabled(true);
  SparseExec::set_bwd_enabled(true);
  SparseExec::set_threshold(0.25f);

  Rng rng(107);
  for (float grad_rate : {1.f, 0.1f}) {
    Linear lin(24, 10, true, rng);
    Tensor x = Tensor::bernoulli(Shape{5, 24}, rng, 0.1f);
    Tensor g = grad_rate >= 1.f
                   ? Tensor::randn(Shape{5, 10}, rng)
                   : sparse_signal(Shape{5, 10}, rng, grad_rate);
    Grads sparse = run_step(lin, x, g);
    Grads dense = dense_reference(lin, x, g);
    SCOPED_TRACE("grad_rate=" + std::to_string(grad_rate));
    expect_bitwise_equal(sparse, dense);
  }
}

TEST(LinearSparseBwd, InvariantUnderChunkPartitions) {
  SparseGuard guard;
  SparseExec::set_enabled(true);
  SparseExec::set_bwd_enabled(true);
  SparseExec::set_threshold(0.25f);

  Rng rng(109);
  Linear lin(32, 12, false, rng);
  Tensor x = Tensor::bernoulli(Shape{4, 32}, rng, 0.1f);
  Tensor g = sparse_signal(Shape{4, 12}, rng, 0.1f);

  Grads base = run_step(lin, x, g);
  for (std::size_t k : {1u, 2u, 4u}) {
    ChunkGuard chunks(k);
    Grads got = run_step(lin, x, g);
    SCOPED_TRACE("chunks=" + std::to_string(k));
    expect_bitwise_equal(got, base);
  }
  expect_bitwise_equal(base, dense_reference(lin, x, g));
}

// --- DepthwiseConv2d --------------------------------------------------------

TEST(DepthwiseSparseBwd, MatchesDenseBitForBit) {
  SparseGuard guard;
  SparseExec::set_enabled(true);
  SparseExec::set_bwd_enabled(true);
  SparseExec::set_threshold(0.25f);

  Rng rng(111);
  struct DwCase {
    std::int64_t c, k, s, p;
  };
  for (const DwCase dc : {DwCase{4, 3, 1, 1}, DwCase{3, 3, 2, 1}}) {
    DepthwiseConv2d conv(dc.c, dc.k, dc.s, dc.p, true, rng);
    Tensor x = Tensor::bernoulli(Shape{2, dc.c, 7, 7}, rng, 0.1f);
    Tensor g = sparse_signal(conv.output_shape(x.shape()), rng, 0.2f);
    Grads sparse = run_step(conv, x, g);
    Grads dense = dense_reference(conv, x, g);
    SCOPED_TRACE("stride=" + std::to_string(dc.s));
    expect_bitwise_equal(sparse, dense);
  }
}

// --- LIF/PLIF-produced gradients through a conv -----------------------------

// Run spikes -> conv -> lif in sparse mode, backprop a top gradient, and
// capture the surrogate gradient the neuron hands the conv. Then replay
// the SAME gradient through the conv in forced-dense mode. The sparse and
// dense conv backwards must agree bit-for-bit (the conv's own forward
// mode never enters its backward math: dW uses input x grad_out, dX uses
// W x grad_out).
template <typename Neuron>
void check_neuron_driven_conv(const LifConfig& cfg, float in_rate,
                              bool expect_sparse_dx, int timesteps = 1) {
  SparseGuard guard;
  SparseExec::set_enabled(true);
  SparseExec::set_bwd_enabled(true);
  SparseExec::set_threshold(0.25f);

  Rng rng(113);
  Conv2d conv(3, 4, 3, 1, 1, false, rng);
  Neuron neuron(cfg);
  std::vector<Tensor> xs;
  std::vector<Tensor> g_tops;
  for (int t = 0; t < timesteps; ++t) {
    xs.push_back(Tensor::bernoulli(Shape{2, 3, 8, 8}, rng, in_rate));
    g_tops.push_back(Tensor::randn(conv.output_shape(xs[0].shape()), rng));
  }

  // Live sparse run: the neuron publishes its active-set hint on each
  // timestep's backward, the conv consumes it right away.
  conv.reset_state();
  neuron.reset_state();
  for (Parameter* p : conv.parameters()) p->zero_grad();
  for (int t = 0; t < timesteps; ++t) {
    (void)neuron.forward(conv.forward(xs[t], /*train=*/true),
                         /*train=*/true);
  }
  SparseExec::reset_stats();
  std::vector<Tensor> g_convs(timesteps);
  std::vector<Tensor> sparse_dx(timesteps);
  std::int64_t true_nnz = 0;
  for (int t = timesteps - 1; t >= 0; --t) {
    g_convs[t] = neuron.backward(g_tops[t]);
    true_nnz += count_nonzero(g_convs[t].data(), g_convs[t].numel());
    sparse_dx[t] = conv.backward(g_convs[t]);
  }
  Tensor sparse_dw = conv.weight().grad;
  const auto stats = SparseExec::bwd_stats();
  EXPECT_EQ(stats.sparse_calls + stats.dense_calls,
            static_cast<std::uint64_t>(timesteps));
  if (expect_sparse_dx) {
    EXPECT_GE(stats.sparse_calls, 1u);
  } else {
    EXPECT_EQ(stats.dense_calls, static_cast<std::uint64_t>(timesteps));
  }
  // The published hints were exact: telemetry saw the true nonzero count.
  EXPECT_EQ(stats.nnz, static_cast<double>(true_nnz));

  // Dense replay with the captured per-timestep gradients (the conv's
  // backward math never reads its own forward output, so feeding the same
  // gradients must reproduce dW and every dX bit-for-bit).
  SparseExec::set_enabled(false);
  conv.reset_state();
  for (Parameter* p : conv.parameters()) p->zero_grad();
  for (int t = 0; t < timesteps; ++t) {
    (void)conv.forward(xs[t], /*train=*/true);
  }
  for (int t = timesteps - 1; t >= 0; --t) {
    Tensor dense_dx = conv.backward(g_convs[t]);
    EXPECT_EQ(Tensor::max_abs_diff(sparse_dx[t], dense_dx), 0.f)
        << "dX mismatch at timestep " << t;
  }
  EXPECT_EQ(Tensor::max_abs_diff(sparse_dw, conv.weight().grad), 0.f);

  neuron.reset_state();
  conv.reset_state();
}

TEST(NeuronDrivenConvBwd, BoxcarActiveSetDispatchesSparse) {
  LifConfig cfg;
  cfg.surrogate.kind = SurrogateKind::Boxcar;
  cfg.surrogate.scale = 2.f;  // half-width 0.5: narrow window, sparse dL/dx
  check_neuron_driven_conv<Lif>(cfg, 0.1f, /*expect_sparse_dx=*/true);
}

TEST(NeuronDrivenConvBwd, FastSigmoidIsDenseEverywhere) {
  LifConfig cfg;
  cfg.surrogate.kind = SurrogateKind::FastSigmoid;
  check_neuron_driven_conv<Lif>(cfg, 0.1f, /*expect_sparse_dx=*/false);
}

TEST(NeuronDrivenConvBwd, AtanIsDenseEverywhere) {
  LifConfig cfg;
  cfg.surrogate.kind = SurrogateKind::Atan;
  check_neuron_driven_conv<Lif>(cfg, 0.1f, /*expect_sparse_dx=*/false);
}

TEST(NeuronDrivenConvBwd, PlifBoxcarDispatchesSparse) {
  LifConfig cfg;
  cfg.surrogate.kind = SurrogateKind::Boxcar;
  cfg.surrogate.scale = 2.f;
  check_neuron_driven_conv<Plif>(cfg, 0.1f, /*expect_sparse_dx=*/true);
}

TEST(NeuronDrivenConvBwd, RefractoryLifStaysExact) {
  LifConfig cfg;
  cfg.surrogate.kind = SurrogateKind::Boxcar;
  cfg.surrogate.scale = 2.f;
  cfg.refractory = 2;  // silenced steps mask their spike gradient to zero
  // 3 timesteps so neurons that spike at t=0 are refractory (live_mask 0,
  // gradient hard-zeroed) during t=1..2.
  check_neuron_driven_conv<Lif>(cfg, 0.3f, /*expect_sparse_dx=*/true,
                                /*timesteps=*/3);
}

TEST(BoxcarBoundary, WindowEdgeIsInsideTheActiveSet) {
  // scale = 2 -> half-width w = 0.5 (both exact in binary floating point).
  Surrogate s;
  s.kind = SurrogateKind::Boxcar;
  s.scale = 2.f;
  EXPECT_EQ(s.grad(0.5f), 1.f);    // |u| == w: inside the window
  EXPECT_EQ(s.grad(-0.5f), 1.f);
  EXPECT_EQ(s.grad(std::nextafter(0.5f, 1.f)), 0.f);  // just outside

  // A LIF neuron landing exactly on the window edge: threshold 1,
  // x = 1.5 on a fresh membrane -> u = 0.5 == w. Its gradient entry must
  // be counted active and propagate go * sigma'(u) = go * 1.
  LifConfig cfg;
  cfg.surrogate = s;
  cfg.threshold = 1.f;
  Lif lif(cfg);
  Tensor x(Shape{1, 4});
  x[0] = 1.5f;   // u = +0.5: boundary, active
  x[1] = 0.5f;   // u = -0.5: boundary, active
  x[2] = 1.6f;   // u > w: inactive
  x[3] = 0.f;    // u = -1: inactive
  (void)lif.forward(x, /*train=*/true);
  Tensor g = Tensor::full(Shape{1, 4}, 2.f);
  Tensor gi = lif.backward(g);
  EXPECT_EQ(gi[0], 2.f);
  EXPECT_EQ(gi[1], 2.f);
  EXPECT_EQ(gi[2], 0.f);
  EXPECT_EQ(gi[3], 0.f);
  lif.reset_state();
}

// --- GradDensityHint --------------------------------------------------------

TEST(GradDensityHintTest, MatchConsumesMismatchFallsBack) {
  GradDensityHint::clear();
  Tensor t(Shape{8});
  GradDensityHint::publish(t.data(), t.numel(), 3);
  // Wrong numel: no match, and the hint survives for the right consumer.
  EXPECT_EQ(GradDensityHint::take(t.data(), 4), -1);
  EXPECT_EQ(GradDensityHint::take(t.data(), t.numel()), 3);
  // Consumed: a second take must re-scan.
  EXPECT_EQ(GradDensityHint::take(t.data(), t.numel()), -1);
  GradDensityHint::clear();
}

// --- RetainedActivations ----------------------------------------------------

TEST(RetainedActivationsTest, SparseContextsShrinkAndBalance) {
  SparseGuard guard;
  SparseExec::set_enabled(true);
  SparseExec::set_bwd_enabled(true);
  SparseExec::set_threshold(0.25f);

  Rng rng(117);
  Conv2d conv(4, 4, 3, 1, 1, false, rng);
  Tensor x = Tensor::bernoulli(Shape{1, 4, 8, 8}, rng, 0.05f);
  Tensor g = Tensor::randn(conv.output_shape(x.shape()), rng);
  const std::int64_t dense_bytes =
      x.numel() * static_cast<std::int64_t>(sizeof(float));

  const std::int64_t base = RetainedActivations::current();

  // Sparse forward retains the CSR, far smaller than the dense tensor.
  (void)conv.forward(x, /*train=*/true);
  const std::int64_t sparse_held = RetainedActivations::current() - base;
  EXPECT_GT(sparse_held, 0);
  EXPECT_LT(sparse_held, dense_bytes);
  EXPECT_GE(RetainedActivations::high_water(), base + sparse_held);
  (void)conv.backward(g);
  EXPECT_EQ(RetainedActivations::current(), base);

  // Dense forward retains the full tensor; reset_state releases it.
  SparseExec::set_enabled(false);
  (void)conv.forward(x, /*train=*/true);
  EXPECT_EQ(RetainedActivations::current() - base, dense_bytes);
  conv.reset_state();
  EXPECT_EQ(RetainedActivations::current(), base);
}

TEST(RetainedActivationsTest, NeuronContextsBalanceAcrossTimesteps) {
  Rng rng(119);
  Lif lif(LifConfig{});
  Tensor x = Tensor::bernoulli(Shape{2, 3, 4, 4}, rng, 0.3f);
  const std::int64_t base = RetainedActivations::current();
  for (int t = 0; t < 3; ++t) (void)lif.forward(x, /*train=*/true);
  EXPECT_GT(RetainedActivations::current(), base);
  lif.reset_state();
  EXPECT_EQ(RetainedActivations::current(), base);
}

// --- backward-dispatch telemetry --------------------------------------------

TEST(SparseBwdStats, CountsDispatchAndDensity) {
  SparseGuard guard;
  SparseExec::set_enabled(true);
  SparseExec::set_bwd_enabled(true);
  SparseExec::set_threshold(0.25f);

  Rng rng(121);
  Linear lin(16, 8, false, rng);
  Tensor x = Tensor::bernoulli(Shape{3, 16}, rng, 0.1f);
  Tensor g_sparse = sparse_signal(Shape{3, 8}, rng, 0.1f);
  Tensor g_dense = Tensor::randn(Shape{3, 8}, rng);

  SparseExec::reset_stats();
  (void)run_step(lin, x, g_sparse);
  (void)run_step(lin, x, g_dense);
  const auto stats = SparseExec::bwd_stats();
  EXPECT_EQ(stats.sparse_calls, 1u);
  EXPECT_EQ(stats.dense_calls, 1u);
  EXPECT_EQ(stats.elements, static_cast<double>(2 * g_dense.numel()));
  EXPECT_GT(stats.nnz, 0.0);
  EXPECT_LT(stats.density(), 1.0);

  // The gate is an escape hatch: with SNNSKIP_SPARSE_BWD off, nothing is
  // counted and nothing dispatches sparse.
  SparseExec::set_bwd_enabled(false);
  SparseExec::reset_stats();
  (void)run_step(lin, x, g_sparse);
  EXPECT_EQ(SparseExec::bwd_stats().sparse_calls, 0u);
  EXPECT_EQ(SparseExec::bwd_stats().dense_calls, 0u);
}

// --- sparse dX under finite differences -------------------------------------

// The layer-level FD harness (gradcheck_test) probes with a dense random
// weighting, which always dispatches the dense dX path. Here the probe
// gradient itself is sparse, so the event-driven scatter is what FD
// differentiates.
TEST(SparseBwdFiniteDiff, ConvInputGradSparsePath) {
  SparseGuard guard;
  SparseExec::set_enabled(true);
  SparseExec::set_bwd_enabled(true);
  SparseExec::set_threshold(1.f);  // always sparse, any density

  Rng rng(123);
  Conv2d conv(2, 3, 3, 1, 1, true, rng);
  Tensor x = Tensor::bernoulli(Shape{1, 2, 5, 5}, rng, 0.2f);
  Tensor w = sparse_signal(conv.output_shape(x.shape()), rng, 0.3f);

  auto loss = [&](const Tensor& in) {
    conv.reset_state();
    Tensor y = conv.forward(in, /*train=*/true);
    conv.reset_state();
    double s = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      s += static_cast<double>(y[static_cast<std::size_t>(i)]) *
           w[static_cast<std::size_t>(i)];
    }
    return s;
  };

  conv.reset_state();
  for (Parameter* p : conv.parameters()) p->zero_grad();
  (void)conv.forward(x, /*train=*/true);
  Tensor gx = conv.backward(w);

  const float eps = 1e-2f;
  for (std::int64_t i = 0; i < x.numel(); i += 7) {
    const std::size_t si = static_cast<std::size_t>(i);
    const float orig = x[si];
    x[si] = orig + eps;
    const double lp = loss(x);
    x[si] = orig - eps;
    const double lm = loss(x);
    x[si] = orig;
    const double fd = (lp - lm) / (2.0 * eps);
    const double an = gx[si];
    EXPECT_NEAR(fd, an, 2e-2 * std::max(1.0, std::abs(an)))
        << "input grad at flat index " << i;
  }
}

}  // namespace
}  // namespace snnskip
