// Tests for the optimization substrate: encodings, kernels, GP regression,
// acquisition functions, Bayesian optimization and random search on cheap
// synthetic objectives.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "opt/acquisition.h"
#include "opt/bayes_opt.h"
#include "opt/encoding.h"
#include "opt/gp.h"
#include "opt/kernel.h"
#include "opt/random_search.h"

namespace snnskip {
namespace {

TEST(Encoding, OneHotLayout) {
  const auto f = one_hot_features({0, 2, 1});
  ASSERT_EQ(f.size(), 9u);
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_DOUBLE_EQ(f[5], 1.0);
  EXPECT_DOUBLE_EQ(f[7], 1.0);
  EXPECT_DOUBLE_EQ(f[1] + f[2] + f[3] + f[4] + f[6] + f[8], 0.0);
}

TEST(Encoding, HammingDistance) {
  EXPECT_EQ(hamming_distance({0, 1, 2}, {0, 1, 2}), 0);
  EXPECT_EQ(hamming_distance({0, 1, 2}, {1, 1, 0}), 2);
}

TEST(Encoding, HashDistinguishes) {
  EXPECT_NE(encoding_hash({0, 1}), encoding_hash({1, 0}));
  EXPECT_EQ(encoding_hash({2, 2, 0}), encoding_hash({2, 2, 0}));
}

TEST(RbfKernel, SelfSimilarityIsVariance) {
  RbfKernel k(1.5, 2.0);
  const std::vector<double> x{1.0, -2.0, 0.5};
  EXPECT_NEAR(k(x, x), 2.0, 1e-12);
}

TEST(RbfKernel, SymmetricAndDecaying) {
  RbfKernel k(1.0, 1.0);
  const std::vector<double> a{0.0}, b{1.0}, c{3.0};
  EXPECT_DOUBLE_EQ(k(a, b), k(b, a));
  EXPECT_GT(k(a, b), k(a, c));
  EXPECT_GT(k(a, c), 0.0);
}

TEST(RbfKernel, OneHotDistanceIsHamming) {
  // ||onehot(a) - onehot(b)||^2 = 2 * hamming(a, b).
  RbfKernel k(1.0, 1.0);
  const EncodingVec a{0, 1, 2}, b{0, 2, 2};
  const double expected = std::exp(-2.0 * 1.0 / 2.0);
  EXPECT_NEAR(k(one_hot_features(a), one_hot_features(b)), expected, 1e-12);
}

TEST(Matern52Kernel, BasicProperties) {
  Matern52Kernel k(1.0, 1.5);
  const std::vector<double> a{0.0}, b{2.0};
  EXPECT_NEAR(k(a, a), 1.5, 1e-12);
  EXPECT_GT(k(a, b), 0.0);
  EXPECT_LT(k(a, b), 1.5);
}

TEST(Gp, InterpolatesObservations) {
  GaussianProcess gp(std::make_shared<RbfKernel>(1.0, 1.0), 1e-8);
  const std::vector<std::vector<double>> x{{0.0}, {1.0}, {2.0}};
  const std::vector<double> y{1.0, 3.0, 2.0};
  gp.fit(x, y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const GpPrediction p = gp.predict(x[i]);
    EXPECT_NEAR(p.mean, y[i], 1e-3);
    EXPECT_LT(p.variance, 1e-3);
  }
}

TEST(Gp, UncertaintyGrowsAwayFromData) {
  GaussianProcess gp(std::make_shared<RbfKernel>(0.5, 1.0), 1e-6);
  gp.fit({{0.0}}, {0.0});
  const double var_near = gp.predict({0.1}).variance;
  const double var_far = gp.predict({5.0}).variance;
  EXPECT_LT(var_near, var_far);
}

TEST(Gp, UnfittedPredictsPrior) {
  GaussianProcess gp(std::make_shared<RbfKernel>(1.0, 1.0), 1e-6);
  const GpPrediction p = gp.predict({0.0});
  EXPECT_DOUBLE_EQ(p.mean, 0.0);
  EXPECT_GT(p.variance, 0.0);
}

TEST(Gp, HandlesConstantTargets) {
  GaussianProcess gp(std::make_shared<RbfKernel>(1.0, 1.0), 1e-6);
  gp.fit({{0.0}, {1.0}}, {2.0, 2.0});
  EXPECT_NEAR(gp.predict({0.5}).mean, 2.0, 0.1);
}

TEST(Gp, LogMarginalLikelihoodIsFinite) {
  GaussianProcess gp(std::make_shared<RbfKernel>(1.0, 1.0), 1e-4);
  gp.fit({{0.0}, {1.0}, {2.0}}, {0.0, 1.0, 0.5});
  EXPECT_TRUE(std::isfinite(gp.log_marginal_likelihood()));
}

TEST(Gp, StandardizationMakesScaleIrrelevant) {
  // Two GPs on the same data at different scales should rank points the
  // same way.
  GaussianProcess small(std::make_shared<RbfKernel>(1.0, 1.0), 1e-6);
  GaussianProcess big(std::make_shared<RbfKernel>(1.0, 1.0), 1e-6);
  small.fit({{0.0}, {1.0}, {2.0}}, {0.1, 0.3, 0.2});
  big.fit({{0.0}, {1.0}, {2.0}}, {100.0, 300.0, 200.0});
  const double s_diff = small.predict({0.9}).mean - small.predict({0.1}).mean;
  const double b_diff = big.predict({0.9}).mean - big.predict({0.1}).mean;
  EXPECT_GT(s_diff, 0.0);
  EXPECT_GT(b_diff, 0.0);
}

TEST(Acquisition, LcbMath) {
  GpPrediction p;
  p.mean = 1.0;
  p.variance = 4.0;
  EXPECT_DOUBLE_EQ(lcb(p, 2.0), 1.0 - 4.0);
}

TEST(Acquisition, EiNonNegativeAndMonotone) {
  GpPrediction better;
  better.mean = 0.0;
  better.variance = 1.0;
  GpPrediction worse;
  worse.mean = 2.0;
  worse.variance = 1.0;
  const double best = 1.0;
  EXPECT_GE(expected_improvement(better, best), 0.0);
  EXPECT_GT(expected_improvement(better, best),
            expected_improvement(worse, best));
}

TEST(Acquisition, EiZeroWhenCertainlyWorse) {
  GpPrediction p;
  p.mean = 5.0;
  p.variance = 0.0;
  EXPECT_DOUBLE_EQ(expected_improvement(p, 1.0), 0.0);
}

TEST(Acquisition, PiIsProbability) {
  GpPrediction p;
  p.mean = 0.5;
  p.variance = 1.0;
  const double v = probability_of_improvement(p, 0.5);
  EXPECT_NEAR(v, 0.5, 1e-9);
  p.variance = 0.0;
  EXPECT_DOUBLE_EQ(probability_of_improvement(p, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(probability_of_improvement(p, 0.2), 0.0);
}

TEST(Acquisition, UnifiedScoreLargerIsBetter) {
  GpPrediction good;
  good.mean = 0.0;
  good.variance = 1.0;
  GpPrediction bad;
  bad.mean = 3.0;
  bad.variance = 1.0;
  for (auto kind :
       {AcquisitionKind::Ucb, AcquisitionKind::Ei, AcquisitionKind::Pi}) {
    EXPECT_GT(acquisition_score(kind, good, 1.0, 2.0),
              acquisition_score(kind, bad, 1.0, 2.0))
        << to_string(kind);
  }
}

TEST(Acquisition, StringRoundTrip) {
  for (auto k :
       {AcquisitionKind::Ucb, AcquisitionKind::Ei, AcquisitionKind::Pi}) {
    EXPECT_EQ(acquisition_from_string(to_string(k)), k);
  }
  EXPECT_THROW(acquisition_from_string("zzz"), std::invalid_argument);
}

// --- search loops on a synthetic objective --------------------------------

// Objective over 8 ternary slots: value = sum of per-slot penalties; global
// optimum at all-2 with value 0. Smooth in Hamming distance, so the GP can
// model it.
BoProblem toy_problem(int slots = 8) {
  BoProblem p;
  p.sample = [slots](Rng& rng) {
    EncodingVec code(static_cast<std::size_t>(slots));
    for (auto& v : code) v = static_cast<int>(rng.uniform_int(3ULL));
    return code;
  };
  p.featurize = [](const EncodingVec& code) {
    return one_hot_features(code);
  };
  p.objective = [](const EncodingVec& code) {
    double v = 0.0;
    for (int c : code) v += (2 - c) * 0.5;
    return v;
  };
  return p;
}

TEST(BayesOpt, FindsGoodSolutions) {
  BoConfig cfg;
  cfg.initial_design = 4;
  cfg.iterations = 8;
  cfg.batch_k = 2;
  cfg.candidate_pool = 64;
  cfg.seed = 5;
  const SearchTrace trace = run_bayes_opt(toy_problem(), cfg);
  EXPECT_EQ(trace.observations.size(), 4u + 16u);
  // The optimum is 0; BO should get close with 20 evaluations out of 3^8.
  EXPECT_LT(trace.best_value, 1.5);
}

TEST(BayesOpt, NeverReevaluatesPoints) {
  BoConfig cfg;
  cfg.initial_design = 3;
  cfg.iterations = 6;
  cfg.batch_k = 2;
  cfg.seed = 6;
  const SearchTrace trace = run_bayes_opt(toy_problem(4), cfg);
  std::set<std::uint64_t> seen;
  for (const auto& obs : trace.observations) {
    EXPECT_TRUE(seen.insert(encoding_hash(obs.code)).second)
        << "duplicate observation";
  }
}

TEST(BayesOpt, BestSoFarIsMonotone) {
  BoConfig cfg;
  cfg.seed = 7;
  const SearchTrace trace = run_bayes_opt(toy_problem(), cfg);
  for (std::size_t i = 1; i < trace.best_so_far.size(); ++i) {
    EXPECT_LE(trace.best_so_far[i], trace.best_so_far[i - 1]);
  }
  EXPECT_DOUBLE_EQ(trace.best_so_far.back(), trace.best_value);
}

TEST(BayesOpt, BeatsRandomSearchOnAverage) {
  // Same evaluation budget; average final best over several seeds.
  double bo_total = 0.0, rs_total = 0.0;
  const int seeds = 5;
  for (int s = 0; s < seeds; ++s) {
    BoConfig bcfg;
    bcfg.initial_design = 4;
    bcfg.iterations = 6;
    bcfg.batch_k = 2;
    bcfg.candidate_pool = 64;
    bcfg.seed = 100 + static_cast<std::uint64_t>(s);
    bo_total += run_bayes_opt(toy_problem(), bcfg).best_value;

    RsConfig rcfg;
    rcfg.evaluations = 16;
    rcfg.seed = 200 + static_cast<std::uint64_t>(s);
    rs_total += run_random_search(toy_problem(), rcfg).best_value;
  }
  EXPECT_LT(bo_total / seeds, rs_total / seeds);
}

TEST(RandomSearch, SamplesWithoutReplacement) {
  RsConfig cfg;
  cfg.evaluations = 20;
  cfg.seed = 8;
  const SearchTrace trace = run_random_search(toy_problem(3), cfg);
  std::set<std::uint64_t> seen;
  for (const auto& obs : trace.observations) {
    seen.insert(encoding_hash(obs.code));
  }
  // 3^3 = 27 points; 20 draws without replacement should mostly be unique.
  EXPECT_GE(seen.size(), 18u);
}

TEST(RandomSearch, TraceBookkeeping) {
  RsConfig cfg;
  cfg.evaluations = 10;
  cfg.seed = 9;
  const SearchTrace trace = run_random_search(toy_problem(), cfg);
  EXPECT_EQ(trace.observations.size(), 10u);
  EXPECT_EQ(trace.best_so_far.size(), 10u);
  double best = 1e18;
  for (const auto& obs : trace.observations) best = std::min(best, obs.value);
  EXPECT_DOUBLE_EQ(trace.best_value, best);
}

TEST(BayesOpt, DeterministicForSeed) {
  BoConfig cfg;
  cfg.seed = 42;
  cfg.iterations = 4;
  const SearchTrace a = run_bayes_opt(toy_problem(), cfg);
  const SearchTrace b = run_bayes_opt(toy_problem(), cfg);
  ASSERT_EQ(a.observations.size(), b.observations.size());
  for (std::size_t i = 0; i < a.observations.size(); ++i) {
    EXPECT_EQ(a.observations[i].code, b.observations[i].code);
  }
}

}  // namespace
}  // namespace snnskip
