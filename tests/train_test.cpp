// Tests for the training engine: encoding plans, learning-sanity of the
// BPTT step, grad clipping, weight-store sharing semantics, and schedules.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/synthetic_cifar10.h"
#include "data/synthetic_dvs_cifar.h"
#include "models/zoo.h"
#include "train/checkpoint.h"
#include "train/evaluate.h"
#include "train/schedules.h"
#include "train/trainer.h"
#include "train/weight_store.h"

namespace snnskip {
namespace {

SyntheticConfig tiny_data() {
  SyntheticConfig cfg;
  cfg.height = 8;
  cfg.width = 8;
  cfg.timesteps = 4;
  cfg.train_size = 40;
  cfg.val_size = 20;
  cfg.test_size = 20;
  cfg.seed = 31;
  return cfg;
}

ModelConfig tiny_model(NeuronMode mode = NeuronMode::Spiking) {
  ModelConfig cfg;
  cfg.mode = mode;
  cfg.in_channels = 2;
  cfg.num_classes = 10;
  cfg.max_timesteps = 4;
  cfg.width = 4;
  cfg.seed = 5;
  return cfg;
}

TrainConfig tiny_train() {
  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 10;
  cfg.lr = 0.05f;
  cfg.timesteps = 4;
  cfg.seed = 17;
  return cfg;
}

TEST(EncodingPlan, EventDataUsesEventEncoder) {
  auto ds = std::make_shared<SyntheticDvsCifar>(tiny_data(), Split::Train);
  const EncodingPlan plan =
      make_encoding_plan(*ds, NeuronMode::Spiking, tiny_train());
  EXPECT_EQ(plan.timesteps, 4);
  // One step of encoding slices 2 polarity channels.
  DataLoader loader(*ds, 2, false, 1);
  loader.start_epoch(0);
  Batch b;
  ASSERT_TRUE(loader.next(b));
  const Tensor step = plan.encoder->encode(b.x, 0);
  EXPECT_EQ(step.shape(), (Shape{2, 2, 8, 8}));
}

TEST(EncodingPlan, AnalogModeIsSingleStepDirect) {
  auto ds = std::make_shared<SyntheticCifar10>(tiny_data(), Split::Train);
  const EncodingPlan plan =
      make_encoding_plan(*ds, NeuronMode::Analog, tiny_train());
  EXPECT_EQ(plan.timesteps, 1);
}

TEST(EncodingPlan, StaticSpikingUsesConfiguredTimesteps) {
  auto ds = std::make_shared<SyntheticCifar10>(tiny_data(), Split::Train);
  TrainConfig cfg = tiny_train();
  cfg.timesteps = 6;
  const EncodingPlan plan = make_encoding_plan(*ds, NeuronMode::Spiking, cfg);
  EXPECT_EQ(plan.timesteps, 6);
}

TEST(EncodingPlan, PoissonEncodingSelectable) {
  auto ds = std::make_shared<SyntheticCifar10>(tiny_data(), Split::Train);
  TrainConfig cfg = tiny_train();
  cfg.encoding = EncodingKind::Poisson;
  const EncodingPlan plan = make_encoding_plan(*ds, NeuronMode::Spiking, cfg);
  DataLoader loader(*ds, 2, false, 1);
  loader.start_epoch(0);
  Batch b;
  ASSERT_TRUE(loader.next(b));
  const Tensor step = plan.encoder->encode(b.x, 0);
  for (std::int64_t i = 0; i < step.numel(); ++i) {
    const float v = step[static_cast<std::size_t>(i)];
    EXPECT_TRUE(v == 0.f || v == 1.f);
  }
}

TEST(ClipGradNorm, ScalesDownLargeGradients) {
  Parameter p("w", Tensor(Shape{4}));
  p.grad = Tensor(Shape{4}, std::vector<float>{3.f, 0.f, 4.f, 0.f});  // norm 5
  const double pre = clip_grad_norm({&p}, 1.f);
  EXPECT_NEAR(pre, 5.0, 1e-5);
  double post = 0.0;
  for (std::int64_t i = 0; i < 4; ++i) {
    post += p.grad[static_cast<std::size_t>(i)] *
            p.grad[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(std::sqrt(post), 1.0, 1e-4);
}

TEST(ClipGradNorm, LeavesSmallGradientsAlone) {
  Parameter p("w", Tensor(Shape{2}));
  p.grad = Tensor(Shape{2}, std::vector<float>{0.3f, 0.4f});  // norm 0.5
  clip_grad_norm({&p}, 1.f);
  EXPECT_FLOAT_EQ(p.grad[0], 0.3f);
}

TEST(ClipGradNorm, DisabledWhenNonPositive) {
  Parameter p("w", Tensor(Shape{1}));
  p.grad[0] = 100.f;
  clip_grad_norm({&p}, 0.f);
  EXPECT_FLOAT_EQ(p.grad[0], 100.f);
}

TEST(TrainBatch, ReducesLossOnRepeatedBatch) {
  // Overfit one batch: loss after several steps must drop well below the
  // initial (≈ log 10) value.
  auto ds = std::make_shared<SyntheticDvsCifar>(tiny_data(), Split::Train);
  const ModelConfig mc = tiny_model();
  Network net = build_model("single_block", mc,
                            default_adjacencies("single_block", mc));
  DataLoader loader(*ds, 10, false, 1);
  loader.start_epoch(0);
  Batch batch;
  ASSERT_TRUE(loader.next(batch));
  EventEncoder enc(4, 2);
  auto params = net.parameters();
  Sgd opt(params, 0.05f, 0.9f, 0.f);

  const double first = train_batch(net, enc, batch, 4, opt, 5.f);
  double last = first;
  for (int i = 0; i < 14; ++i) {
    last = train_batch(net, enc, batch, 4, opt, 5.f);
  }
  EXPECT_LT(last, first);
}

TEST(Fit, TracksValidationAccuracy) {
  auto train_ds =
      std::make_shared<SyntheticDvsCifar>(tiny_data(), Split::Train);
  auto val_ds = std::make_shared<SyntheticDvsCifar>(tiny_data(), Split::Val);
  const ModelConfig mc = tiny_model();
  Network net = build_model("single_block", mc,
                            default_adjacencies("single_block", mc));
  TrainConfig cfg = tiny_train();
  cfg.epochs = 2;
  const FitResult result = fit(net, NeuronMode::Spiking, train_ds, val_ds, cfg);
  EXPECT_EQ(result.epochs.size(), 2u);
  EXPECT_GE(result.best_val_acc, result.final_val_acc - 1e-9);
  EXPECT_GE(result.best_val_acc, 0.0);
  EXPECT_LE(result.best_val_acc, 1.0);
}

// --- observers --------------------------------------------------------------

// Records every hook invocation as a compact token so ordering tests can
// assert the whole call sequence at once.
class RecordingObserver : public TrainObserver {
 public:
  void on_train_begin(const TrainConfig& cfg) override {
    (void)cfg;
    events.push_back("train_begin");
  }
  void on_epoch_begin(std::int64_t epoch) override {
    events.push_back("epoch_begin:" + std::to_string(epoch));
  }
  void on_batch_end(const BatchStats& stats) override {
    events.push_back("batch:" + std::to_string(stats.epoch) + ":" +
                     std::to_string(stats.batch));
    last_batch = stats;
  }
  void on_epoch_end(const EpochStats& stats) override {
    events.push_back("epoch_end:" + std::to_string(stats.epoch));
  }
  void on_train_end(const FitResult& result) override {
    events.push_back("train_end");
    final_result = result;
  }

  std::vector<std::string> events;
  BatchStats last_batch;
  FitResult final_result;
};

TEST(Observers, HooksFireInDocumentedOrder) {
  auto train_ds =
      std::make_shared<SyntheticDvsCifar>(tiny_data(), Split::Train);
  auto val_ds = std::make_shared<SyntheticDvsCifar>(tiny_data(), Split::Val);
  const ModelConfig mc = tiny_model();
  Network net = build_model("single_block", mc,
                            default_adjacencies("single_block", mc));
  TrainConfig cfg = tiny_train();
  cfg.epochs = 2;
  RecordingObserver rec;
  cfg.observers.push_back(&rec);
  const FitResult result = fit(net, NeuronMode::Spiking, train_ds, val_ds, cfg);

  // 40 train samples / batch 10 => 4 batches per epoch.
  const std::vector<std::string> expected{
      "train_begin",
      "epoch_begin:0", "batch:0:0", "batch:0:1", "batch:0:2", "batch:0:3",
      "epoch_end:0",
      "epoch_begin:1", "batch:1:0", "batch:1:1", "batch:1:2", "batch:1:3",
      "epoch_end:1",
      "train_end"};
  EXPECT_EQ(rec.events, expected);

  EXPECT_EQ(rec.last_batch.batch_size, 10);
  EXPECT_TRUE(std::isfinite(rec.last_batch.loss));
  ASSERT_EQ(rec.final_result.epochs.size(), 2u);
  EXPECT_EQ(rec.final_result.epochs[1].epoch, 1);
  EXPECT_DOUBLE_EQ(rec.final_result.final_val_acc, result.final_val_acc);
}

TEST(Observers, MultipleObserversAllNotified) {
  auto train_ds =
      std::make_shared<SyntheticDvsCifar>(tiny_data(), Split::Train);
  const ModelConfig mc = tiny_model();
  Network net = build_model("single_block", mc,
                            default_adjacencies("single_block", mc));
  TrainConfig cfg = tiny_train();
  RecordingObserver a, b;
  cfg.observers = {&a, &b};
  fit(net, NeuronMode::Spiking, train_ds, nullptr, cfg);
  EXPECT_EQ(a.events, b.events);
  EXPECT_FALSE(a.events.empty());
}

TEST(Observers, VerboseShimStillPrintsEpochLines) {
  auto train_ds =
      std::make_shared<SyntheticDvsCifar>(tiny_data(), Split::Train);
  auto val_ds = std::make_shared<SyntheticDvsCifar>(tiny_data(), Split::Val);
  const ModelConfig mc = tiny_model();
  Network net = build_model("single_block", mc,
                            default_adjacencies("single_block", mc));
  TrainConfig cfg = tiny_train();
  cfg.verbose = true;  // deprecated path: must install a ProgressPrinter
  ::testing::internal::CaptureStderr();
  fit(net, NeuronMode::Spiking, train_ds, val_ds, cfg);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("epoch 0"), std::string::npos);
  EXPECT_NE(err.find("val_acc="), std::string::npos);
}

TEST(Evaluate, ReportsFiringRateWithRecorder) {
  auto ds = std::make_shared<SyntheticDvsCifar>(tiny_data(), Split::Val);
  const ModelConfig mc = tiny_model();
  Network net = build_model("single_block", mc,
                            default_adjacencies("single_block", mc));
  FiringRateRecorder rec;
  const EvalResult r =
      evaluate(net, NeuronMode::Spiking, *ds, tiny_train(), &rec);
  EXPECT_GE(r.accuracy, 0.0);
  EXPECT_LE(r.accuracy, 1.0);
  EXPECT_GE(r.firing_rate, 0.0);
  EXPECT_LT(r.firing_rate, 1.0);
}

// --- weight store -----------------------------------------------------------

TEST(WeightStore, GetOrInitIsDeterministic) {
  WeightStore a(9), b(9);
  const Tensor& ta = a.get_or_init("k", Shape{3, 4});
  const Tensor& tb = b.get_or_init("k", Shape{3, 4});
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(ta, tb), 0.f);
  WeightStore c(10);  // different seed -> different init
  const Tensor& tc = c.get_or_init("k", Shape{3, 4});
  EXPECT_GT(Tensor::max_abs_diff(ta, tc), 0.f);
}

TEST(WeightStore, GatherScatterRoundTrip) {
  Rng rng(6);
  Tensor full = Tensor::randn(Shape{2, 5, 3, 3}, rng);
  const std::vector<std::int64_t> idx{0, 2, 4};
  Tensor sub = WeightStore::gather_in_dim1(full, idx);
  EXPECT_EQ(sub.shape(), (Shape{2, 3, 3, 3}));
  sub.mul_(2.f);
  WeightStore::scatter_in_dim1(full, sub, idx);
  Tensor sub2 = WeightStore::gather_in_dim1(full, idx);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(sub, sub2), 0.f);
}

TEST(WeightStore, LoadStoreRoundTripSameTopology) {
  const ModelConfig mc = tiny_model();
  Network a = build_model("single_block", mc,
                          default_adjacencies("single_block", mc));
  WeightStore store(3);
  store.store_from(a);

  ModelConfig mc2 = tiny_model();
  mc2.seed = 999;  // different init
  Network b = build_model("single_block", mc2,
                          default_adjacencies("single_block", mc2));
  store.load_into(b);

  // After loading, b's parameters equal a's.
  auto pa = a.parameters();
  auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_FLOAT_EQ(Tensor::max_abs_diff(pa[i]->value, pb[i]->value), 0.f)
        << pa[i]->name;
  }
}

TEST(WeightStore, SharesConvSlicesAcrossTopologies) {
  // Store weights from a chain topology; a DSC topology must recover the
  // chain's weights in its main-channel slice.
  const ModelConfig mc = tiny_model();
  Network chain = build_model("single_block", mc, {Adjacency::chain(4)});
  WeightStore store(4);
  store.store_from(chain);

  ModelConfig mc2 = tiny_model();
  mc2.seed = 777;
  Adjacency adj(4);
  adj.set(0, 2, SkipType::DSC);
  Network dsc = build_model("single_block", mc2, {adj});
  store.load_into(dsc);

  // Node 2's conv in the DSC net: first main_in_c input channels must match
  // the chain version's weights.
  Block* cb = chain.blocks()[0];
  Block* db = dsc.blocks()[0];
  auto* cconv = dynamic_cast<Conv2d*>(cb->nodes()[1].op.get());
  auto* dconv = dynamic_cast<Conv2d*>(db->nodes()[1].op.get());
  ASSERT_NE(cconv, nullptr);
  ASSERT_NE(dconv, nullptr);
  const std::int64_t main_c = db->nodes()[1].main_in_c;
  std::vector<std::int64_t> main_idx;
  for (std::int64_t c = 0; c < main_c; ++c) main_idx.push_back(c);
  const Tensor c_main =
      WeightStore::gather_in_dim1(cconv->weight().value, main_idx);
  const Tensor d_main =
      WeightStore::gather_in_dim1(dconv->weight().value, main_idx);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(c_main, d_main), 0.f);
}

TEST(WeightStore, FirstSeenAdoptsCandidateValues) {
  const ModelConfig mc = tiny_model();
  Network net = build_model("single_block", mc,
                            default_adjacencies("single_block", mc));
  // Mark a BN gamma with a sentinel, load (first contact seeds the store),
  // and confirm the value survives.
  auto params = net.parameters();
  Parameter* gamma = nullptr;
  for (Parameter* p : params) {
    if (p->name.find("gamma") != std::string::npos) {
      gamma = p;
      break;
    }
  }
  ASSERT_NE(gamma, nullptr);
  gamma->value.fill(2.5f);
  WeightStore store(5);
  store.load_into(net);
  EXPECT_FLOAT_EQ(gamma->value[0], 2.5f);
}

// --- checkpoint corruption (fault_test.cpp has the full drill set) ------------

TEST(Checkpoint, FlippedByteFailsCrcWithoutPartialRestore) {
  const std::string path = testing::TempDir() + "train_ckpt_flip.bin";
  Rng rng(41);
  std::vector<CheckpointEntry> entries;
  entries.push_back({"w", Tensor::randn(Shape{4, 4}, rng)});
  ASSERT_TRUE(save_entries(path, entries));

  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(-2, std::ios::end);
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x55);  // guaranteed different byte
  f.seekp(-2, std::ios::end);
  f.write(&b, 1);
  f.close();

  std::vector<CheckpointEntry> loaded{{"stale", Tensor(Shape{1})}};
  EXPECT_FALSE(load_entries(path, loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncationRejectedCleanly) {
  const std::string path = testing::TempDir() + "train_ckpt_trunc.bin";
  Rng rng(42);
  std::vector<CheckpointEntry> entries;
  entries.push_back({"w", Tensor::randn(Shape{8}, rng)});
  ASSERT_TRUE(save_entries(path, entries));
  const auto size = std::filesystem::file_size(path);
  for (const auto cut : {std::uintmax_t{1}, size / 2, size - 9}) {
    std::filesystem::resize_file(path, size - cut);
    std::vector<CheckpointEntry> loaded;
    EXPECT_FALSE(load_entries(path, loaded)) << "cut=" << cut;
    EXPECT_TRUE(loaded.empty());
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, SaveGoesThroughAtomicRename) {
  // After a successful save no .tmp staging file may remain, and an
  // existing checkpoint must survive a failed overwrite attempt intact.
  const std::string path = testing::TempDir() + "train_ckpt_atomic.bin";
  Rng rng(43);
  std::vector<CheckpointEntry> entries;
  entries.push_back({"w", Tensor::randn(Shape{3}, rng)});
  ASSERT_TRUE(save_entries(path, entries));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::vector<CheckpointEntry> loaded;
  EXPECT_TRUE(load_entries(path, loaded));
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(loaded[0].value, entries[0].value),
                  0.f);
  std::remove(path.c_str());
}

// --- schedules ----------------------------------------------------------------

TEST(Schedules, CosineEndpoints) {
  EXPECT_NEAR(cosine_lr(1.f, 0, 10), 1.f, 1e-6f);
  EXPECT_NEAR(cosine_lr(1.f, 9, 10), 0.05f, 1e-6f);
  EXPECT_GT(cosine_lr(1.f, 4, 10), cosine_lr(1.f, 5, 10));
}

TEST(Schedules, StepDecay) {
  EXPECT_FLOAT_EQ(step_lr(1.f, 0, 10, 0.1f), 1.f);
  EXPECT_FLOAT_EQ(step_lr(1.f, 10, 10, 0.1f), 0.1f);
  EXPECT_FLOAT_EQ(step_lr(1.f, 25, 10, 0.1f), 0.01f);
}

TEST(Schedules, PaperRecipesMatchSection4) {
  const TrainConfig c10 = paper_recipe("cifar10");
  EXPECT_EQ(c10.opt, OptKind::SgdMomentum);
  EXPECT_FLOAT_EQ(c10.lr, 0.01f);
  EXPECT_FLOAT_EQ(c10.momentum, 0.9f);
  EXPECT_EQ(c10.timesteps, 25);

  const TrainConfig dvs = paper_recipe("cifar10-dvs");
  EXPECT_FLOAT_EQ(dvs.lr, 0.025f);
  EXPECT_EQ(dvs.opt, OptKind::SgdMomentum);

  const TrainConfig gesture = paper_recipe("dvs128-gesture");
  EXPECT_EQ(gesture.opt, OptKind::Adam);
  EXPECT_FLOAT_EQ(gesture.lr, 0.01f);

  EXPECT_THROW(paper_recipe("bogus"), std::invalid_argument);
}

TEST(Schedules, EpochScaleApplies) {
  const TrainConfig half = paper_recipe("cifar10-dvs", 0.5);
  const TrainConfig full = paper_recipe("cifar10-dvs", 1.0);
  EXPECT_LT(half.epochs, full.epochs);
  EXPECT_GE(half.epochs, 1);
}

TEST(DatasetBundles, AllThreeConstruct) {
  for (const auto& name : dataset_names()) {
    const DatasetBundle b = make_datasets(name, tiny_data());
    EXPECT_EQ(b.train->size(), 40u);
    EXPECT_EQ(b.val->size(), 20u);
    EXPECT_EQ(b.test->size(), 20u);
    EXPECT_EQ(b.has_ann_reference, name == "cifar10");
  }
  EXPECT_THROW(make_datasets("bogus", tiny_data()), std::invalid_argument);
}

}  // namespace
}  // namespace snnskip
