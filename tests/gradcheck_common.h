#pragma once
// Finite-difference gradient checking utilities shared by the test suites.
//
// The library has no tape autograd, so every layer hand-writes its backward
// pass; these checks are the ground truth that keeps them honest. The probe
// loss is sum(w ⊙ forward(x)) for a fixed random w, differentiated wrt the
// input and every parameter, and compared against central differences
// through the *train-mode* forward (the function backward() actually
// differentiates).

#include <gtest/gtest.h>

#include "nn/layer.h"
#include "util/rng.h"

namespace snnskip::testutil {

inline double probe_loss(Layer& layer, const Tensor& x, const Tensor& w) {
  layer.reset_state();
  Tensor y = layer.forward(x, /*train=*/true);
  layer.reset_state();
  double s = 0.0;
  EXPECT_EQ(y.numel(), w.numel());
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    s += static_cast<double>(y[static_cast<std::size_t>(i)]) *
         w[static_cast<std::size_t>(i)];
  }
  return s;
}

/// Check dloss/dx and dloss/dtheta against central differences.
/// `eps` is the FD step; `tol` the max allowed abs error after scaling by
/// max(1, |analytic|).
inline void check_gradients(Layer& layer, Tensor x, std::uint64_t seed,
                            float eps = 1e-2f, float tol = 2e-2f) {
  Rng rng(seed);
  layer.reset_state();
  Tensor probe = layer.forward(x, /*train=*/true);
  Tensor w = Tensor::randn(probe.shape(), rng);

  // Analytic gradients.
  for (Parameter* p : layer.parameters()) p->zero_grad();
  Tensor gx = layer.backward(w);
  layer.reset_state();

  // Input gradient.
  std::size_t checked = 0;
  const std::size_t stride_x =
      std::max<std::size_t>(1, static_cast<std::size_t>(x.numel()) / 64);
  for (std::size_t i = 0; i < static_cast<std::size_t>(x.numel());
       i += stride_x) {
    const float orig = x[i];
    x[i] = orig + eps;
    const double lp = probe_loss(layer, x, w);
    x[i] = orig - eps;
    const double lm = probe_loss(layer, x, w);
    x[i] = orig;
    const double fd = (lp - lm) / (2.0 * eps);
    const double an = gx[i];
    const double scale = std::max(1.0, std::abs(an));
    EXPECT_NEAR(fd, an, tol * scale) << "input grad at flat index " << i;
    ++checked;
  }
  EXPECT_GT(checked, 0u);

  // Parameter gradients.
  for (Parameter* p : layer.parameters()) {
    const std::size_t stride_p =
        std::max<std::size_t>(1,
                              static_cast<std::size_t>(p->value.numel()) / 48);
    for (std::size_t i = 0; i < static_cast<std::size_t>(p->value.numel());
         i += stride_p) {
      const float orig = p->value[i];
      p->value[i] = orig + eps;
      const double lp = probe_loss(layer, x, w);
      p->value[i] = orig - eps;
      const double lm = probe_loss(layer, x, w);
      p->value[i] = orig;
      const double fd = (lp - lm) / (2.0 * eps);
      const double an = p->grad[i];
      const double scale = std::max(1.0, std::abs(an));
      EXPECT_NEAR(fd, an, tol * scale)
          << p->name << " grad at flat index " << i;
    }
  }
}

}  // namespace snnskip::testutil
