// End-to-end integration tests: training actually learns the synthetic
// tasks, the full adaptation pipeline completes, and its report is
// internally consistent. Budgets are tiny (single-core CI scale); the
// learning assertions are against chance level, not paper numbers.

#include <gtest/gtest.h>

#include <cmath>

#include "core/adapter.h"
#include "models/zoo.h"
#include "train/evaluate.h"
#include "train/trainer.h"

namespace snnskip {
namespace {

SyntheticConfig small_data() {
  SyntheticConfig cfg;
  cfg.height = 8;
  cfg.width = 8;
  cfg.timesteps = 5;
  cfg.train_size = 120;
  cfg.val_size = 40;
  cfg.test_size = 40;
  cfg.seed = 1234;
  cfg.noise = 0.1f;
  return cfg;
}

ModelConfig small_model() {
  ModelConfig cfg;
  cfg.width = 6;
  cfg.max_timesteps = 5;
  cfg.seed = 11;
  return cfg;
}

TrainConfig small_train(std::int64_t epochs) {
  TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 20;
  cfg.lr = 0.05f;
  cfg.timesteps = 5;
  cfg.seed = 19;
  return cfg;
}

TEST(Integration, SnnLearnsEventDataAboveChance) {
  const DatasetBundle data = make_datasets("cifar10-dvs", small_data());
  ModelConfig mc = small_model();
  mc.in_channels = 2;
  mc.num_classes = 10;
  Network net = build_model("single_block", mc,
                            default_adjacencies("single_block", mc));
  const TrainConfig cfg = small_train(4);
  fit(net, NeuronMode::Spiking, data.train, nullptr, cfg);
  const EvalResult res = evaluate(net, NeuronMode::Spiking, *data.test, cfg);
  // Chance is 10%; the motion/texture signal should be learnable.
  EXPECT_GT(res.accuracy, 0.2) << "SNN failed to learn the synthetic task";
}

TEST(Integration, AnnTwinLearnsStaticImages) {
  const DatasetBundle data = make_datasets("cifar10", small_data());
  ModelConfig mc = small_model();
  mc.mode = NeuronMode::Analog;
  mc.in_channels = 3;
  mc.max_timesteps = 1;
  Network net = build_model("single_block", mc,
                            default_adjacencies("single_block", mc));
  const TrainConfig cfg = small_train(4);
  fit(net, NeuronMode::Analog, data.train, nullptr, cfg);
  const EvalResult res = evaluate(net, NeuronMode::Analog, *data.test, cfg);
  EXPECT_GT(res.accuracy, 0.25) << "ANN failed to learn the synthetic task";
}

TEST(Integration, SkipConnectionsHelpTraining) {
  // The paper's core observation (Fig. 1): with everything else equal, a
  // skip-connected block trains at least as well as the plain chain. At
  // this CI-sized budget test-set accuracy is too granular (40 samples),
  // so compare the continuous training loss instead: the skip version must
  // descend from the initial ~log(10) and not lag far behind the chain.
  const DatasetBundle data = make_datasets("cifar10-dvs", small_data());
  ModelConfig mc = small_model();
  const TrainConfig cfg = small_train(4);

  Network chain = build_model("single_block", mc, {Adjacency::chain(4)});
  const FitResult fr_chain =
      fit(chain, NeuronMode::Spiking, data.train, nullptr, cfg);
  const double loss_chain = fr_chain.epochs.back().train_loss;

  Network skipped = build_model("single_block", mc,
                                {Adjacency::uniform(4, SkipType::ASC, 3)});
  const FitResult fr_skip =
      fit(skipped, NeuronMode::Spiking, data.train, nullptr, cfg);
  const double loss_skip = fr_skip.epochs.back().train_loss;

  EXPECT_LT(loss_skip, std::log(10.0))
      << "skip-connected block failed to train at all";
  EXPECT_LT(loss_skip, loss_chain + 0.3)
      << "skip connections degraded training far beyond noise";
}

TEST(Integration, AdaptationPipelineCompletesAndReports) {
  AdapterConfig cfg;
  cfg.model = "single_block";
  cfg.dataset = "cifar10-dvs";
  cfg.data_cfg = small_data();
  cfg.data_cfg.train_size = 60;
  cfg.data_cfg.val_size = 30;
  cfg.data_cfg.test_size = 30;
  cfg.model_cfg = small_model();
  cfg.base_train = small_train(2);
  cfg.finetune = small_train(1);
  cfg.bo.initial_design = 2;
  cfg.bo.iterations = 2;
  cfg.bo.batch_k = 1;
  cfg.bo.candidate_pool = 32;
  cfg.bo.seed = 23;
  cfg.seed = 29;

  const AdaptationReport report = run_adaptation(cfg);

  EXPECT_FALSE(report.has_ann);  // event data has no ANN reference
  EXPECT_GE(report.snn_base_test_acc, 0.0);
  EXPECT_GE(report.optimized_test_acc, 0.0);
  EXPECT_GT(report.snn_base_macs, 0);
  EXPECT_GT(report.optimized_macs, 0);
  EXPECT_EQ(report.trace.observations.size(), 2u + 2u);
  EXPECT_FALSE(report.best_code.empty());
  EXPECT_GT(report.search_seconds, 0.0);
  // The searched architecture should not be catastrophically worse than
  // the baseline it warm-started from.
  EXPECT_GT(report.optimized_test_acc, report.snn_base_test_acc - 0.25);
}

TEST(Integration, AdaptationWithAnnReferenceOnCifar10) {
  AdapterConfig cfg;
  cfg.model = "single_block";
  cfg.dataset = "cifar10";
  cfg.data_cfg = small_data();
  cfg.data_cfg.train_size = 60;
  cfg.data_cfg.val_size = 30;
  cfg.data_cfg.test_size = 30;
  cfg.model_cfg = small_model();
  cfg.base_train = small_train(2);
  cfg.base_train.timesteps = 4;
  cfg.finetune = small_train(1);
  cfg.finetune.timesteps = 4;
  cfg.bo.initial_design = 2;
  cfg.bo.iterations = 1;
  cfg.bo.batch_k = 1;
  cfg.bo.seed = 31;
  cfg.seed = 37;

  const AdaptationReport report = run_adaptation(cfg);
  EXPECT_TRUE(report.has_ann);
  EXPECT_GT(report.ann_test_acc, 0.0);
}

TEST(Integration, BoAndRsTracesOnSharedEvaluator) {
  // Fig. 3's machinery: both searches run on the same space and produce
  // monotone best-so-far curves of the requested length.
  EvaluatorConfig ecfg;
  ecfg.model = "single_block";
  ecfg.model_cfg = small_model();
  ecfg.finetune = small_train(1);
  ecfg.scratch = small_train(1);
  ecfg.seed = 41;
  SyntheticConfig dc = small_data();
  dc.train_size = 40;
  dc.val_size = 20;
  dc.test_size = 20;
  CandidateEvaluator evaluator(ecfg, make_datasets("cifar10-dvs", dc));

  BoConfig bo;
  bo.initial_design = 2;
  bo.iterations = 2;
  bo.batch_k = 1;
  bo.candidate_pool = 16;
  bo.seed = 43;
  const SearchTrace bt = bo_trace(evaluator, bo);
  EXPECT_EQ(bt.observations.size(), 4u);

  RsConfig rs;
  rs.evaluations = 3;
  rs.seed = 47;
  const SearchTrace rt = rs_trace(evaluator, rs);
  EXPECT_EQ(rt.observations.size(), 3u);

  for (std::size_t i = 1; i < bt.best_so_far.size(); ++i) {
    EXPECT_LE(bt.best_so_far[i], bt.best_so_far[i - 1]);
  }
}

TEST(Integration, FiringRateIsInPlausibleRange) {
  const DatasetBundle data = make_datasets("dvs128-gesture", small_data());
  ModelConfig mc = small_model();
  mc.num_classes = 11;
  Network net = build_model("resnet18s", mc,
                            default_adjacencies("resnet18s", mc));
  const TrainConfig cfg = small_train(1);
  fit(net, NeuronMode::Spiking, data.train, nullptr, cfg);
  FiringRateRecorder rec;
  const EvalResult res =
      evaluate(net, NeuronMode::Spiking, *data.val, cfg, &rec);
  // SNN firing rates live well below saturation (paper reports 6-22%).
  EXPECT_GT(res.firing_rate, 0.0);
  EXPECT_LT(res.firing_rate, 0.9);
}

}  // namespace
}  // namespace snnskip
