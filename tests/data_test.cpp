// Tests for the synthetic datasets and loader: determinism, split
// disjointness, label balance, event-tensor structure, batching.

#include <gtest/gtest.h>

#include <set>

#include "data/dataloader.h"
#include "data/synthetic_cifar10.h"
#include "data/synthetic_dvs_cifar.h"
#include "data/synthetic_dvs_gesture.h"

namespace snnskip {
namespace {

SyntheticConfig tiny_cfg() {
  SyntheticConfig cfg;
  cfg.height = 8;
  cfg.width = 8;
  cfg.timesteps = 4;
  cfg.train_size = 40;
  cfg.val_size = 20;
  cfg.test_size = 20;
  cfg.seed = 77;
  return cfg;
}

template <typename D>
void expect_deterministic() {
  D a(tiny_cfg(), Split::Train);
  D b(tiny_cfg(), Split::Train);
  for (std::size_t i : {std::size_t{0}, std::size_t{7}, std::size_t{39}}) {
    const Sample sa = a.get(i);
    const Sample sb = b.get(i);
    EXPECT_EQ(sa.y, sb.y);
    EXPECT_FLOAT_EQ(Tensor::max_abs_diff(sa.x, sb.x), 0.f);
  }
}

TEST(SyntheticCifar10, Deterministic) {
  expect_deterministic<SyntheticCifar10>();
}
TEST(SyntheticDvsCifar, Deterministic) {
  expect_deterministic<SyntheticDvsCifar>();
}
TEST(SyntheticDvsGesture, Deterministic) {
  expect_deterministic<SyntheticDvsGesture>();
}

TEST(SyntheticCifar10, ShapeAndRange) {
  SyntheticCifar10 ds(tiny_cfg(), Split::Train);
  const Sample s = ds.get(0);
  EXPECT_EQ(s.x.shape(), (Shape{3, 8, 8}));
  EXPECT_GE(s.x.min_value(), 0.f);
  EXPECT_LE(s.x.max_value(), 1.f);
  EXPECT_EQ(ds.timesteps(), 0);
  EXPECT_EQ(ds.step_channels(), 3);
  EXPECT_EQ(ds.num_classes(), 10);
}

TEST(SyntheticCifar10, LabelsBalancedAndInRange) {
  SyntheticCifar10 ds(tiny_cfg(), Split::Train);
  std::vector<int> counts(10, 0);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto y = ds.get(i).y;
    ASSERT_GE(y, 0);
    ASSERT_LT(y, 10);
    ++counts[static_cast<std::size_t>(y)];
  }
  for (int c : counts) EXPECT_EQ(c, 4);  // 40 samples / 10 classes
}

TEST(SyntheticCifar10, SplitsDiffer) {
  SyntheticCifar10 train(tiny_cfg(), Split::Train);
  SyntheticCifar10 val(tiny_cfg(), Split::Val);
  SyntheticCifar10 test(tiny_cfg(), Split::Test);
  // Same position in different splits must be different samples.
  EXPECT_GT(Tensor::max_abs_diff(train.get(0).x, val.get(0).x), 0.f);
  EXPECT_GT(Tensor::max_abs_diff(val.get(0).x, test.get(0).x), 0.f);
}

TEST(SyntheticCifar10, SamplesWithinClassVary) {
  SyntheticCifar10 ds(tiny_cfg(), Split::Train);
  // Indices 0 and 10 share a class but differ in jitter.
  ASSERT_EQ(ds.get(0).y, ds.get(10).y);
  EXPECT_GT(Tensor::max_abs_diff(ds.get(0).x, ds.get(10).x), 0.01f);
}

TEST(SyntheticDvsCifar, EventTensorIsBinary) {
  SyntheticDvsCifar ds(tiny_cfg(), Split::Train);
  const Sample s = ds.get(3);
  EXPECT_EQ(s.x.shape(), (Shape{8, 8, 8}));  // T*2 = 8 channels
  for (std::int64_t i = 0; i < s.x.numel(); ++i) {
    const float v = s.x[static_cast<std::size_t>(i)];
    EXPECT_TRUE(v == 0.f || v == 1.f);
  }
  EXPECT_EQ(ds.timesteps(), 4);
  EXPECT_EQ(ds.step_channels(), 2);
}

TEST(SyntheticDvsCifar, EventsAreSparseButPresent) {
  SyntheticDvsCifar ds(tiny_cfg(), Split::Train);
  double frac = 0.0;
  for (std::size_t i = 0; i < 10; ++i) {
    frac += ds.get(i).x.nonzero_fraction();
  }
  frac /= 10.0;
  EXPECT_GT(frac, 0.005);  // motion generates events
  EXPECT_LT(frac, 0.6);    // but they stay sparse
}

TEST(SyntheticDvsGesture, ElevenClasses) {
  SyntheticDvsGesture ds(tiny_cfg(), Split::Train);
  EXPECT_EQ(ds.num_classes(), 11);
  std::set<std::int64_t> seen;
  for (std::size_t i = 0; i < ds.size(); ++i) seen.insert(ds.get(i).y);
  EXPECT_EQ(seen.size(), 11u);
}

TEST(SyntheticDvsGesture, MotionCarriesSignal) {
  SyntheticDvsGesture ds(tiny_cfg(), Split::Train);
  // Different gestures produce different event streams for matched jitter
  // positions (same sample index modulo class count differs in class).
  const Sample a = ds.get(0);
  const Sample b = ds.get(1);
  EXPECT_NE(a.y, b.y);
  EXPECT_GT(Tensor::max_abs_diff(a.x, b.x), 0.f);
}

TEST(SyntheticConfig, SplitOffsetsAreDisjoint) {
  const SyntheticConfig cfg = tiny_cfg();
  EXPECT_EQ(cfg.split_offset(Split::Train), 0u);
  EXPECT_EQ(cfg.split_offset(Split::Val), 40u);
  EXPECT_EQ(cfg.split_offset(Split::Test), 60u);
  EXPECT_EQ(cfg.split_size(Split::Val), 20u);
}

TEST(StackSamples, StacksAlongNewAxis) {
  Tensor a = Tensor::full(Shape{2, 3}, 1.f);
  Tensor b = Tensor::full(Shape{2, 3}, 2.f);
  Tensor s = stack_samples({a, b});
  EXPECT_EQ(s.shape(), (Shape{2, 2, 3}));
  EXPECT_FLOAT_EQ(s.at({0, 1, 2}), 1.f);
  EXPECT_FLOAT_EQ(s.at({1, 0, 0}), 2.f);
}

TEST(DataLoader, BatchesCoverDataset) {
  auto ds = std::make_shared<SyntheticCifar10>(tiny_cfg(), Split::Train);
  DataLoader loader(*ds, 16, false, 1);
  EXPECT_EQ(loader.batches_per_epoch(), 3u);  // 40 = 16+16+8
  loader.start_epoch(0);
  Batch batch;
  std::size_t total = 0;
  std::vector<std::int64_t> sizes;
  while (loader.next(batch)) {
    total += batch.y.size();
    sizes.push_back(batch.size());
  }
  EXPECT_EQ(total, 40u);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[2], 8);
}

TEST(DataLoader, ShuffleIsDeterministicPerEpoch) {
  auto ds = std::make_shared<SyntheticCifar10>(tiny_cfg(), Split::Train);
  DataLoader a(*ds, 8, true, 5);
  DataLoader b(*ds, 8, true, 5);
  a.start_epoch(3);
  b.start_epoch(3);
  Batch ba, bb;
  ASSERT_TRUE(a.next(ba));
  ASSERT_TRUE(b.next(bb));
  EXPECT_EQ(ba.y, bb.y);
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(ba.x, bb.x), 0.f);
}

TEST(DataLoader, DifferentEpochsShuffleDifferently) {
  auto ds = std::make_shared<SyntheticCifar10>(tiny_cfg(), Split::Train);
  DataLoader loader(*ds, 40, true, 5);
  Batch e0, e1;
  loader.start_epoch(0);
  loader.next(e0);
  loader.start_epoch(1);
  loader.next(e1);
  EXPECT_NE(e0.y, e1.y);
}

TEST(DataLoader, NoShuffleKeepsOrder) {
  auto ds = std::make_shared<SyntheticCifar10>(tiny_cfg(), Split::Train);
  DataLoader loader(*ds, 40, false, 5);
  loader.start_epoch(0);
  Batch batch;
  ASSERT_TRUE(loader.next(batch));
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(batch.y[i], ds->get(i).y);
  }
}

TEST(DataLoader, FullBatchMaterializesAll) {
  auto ds = std::make_shared<SyntheticDvsCifar>(tiny_cfg(), Split::Val);
  DataLoader loader(*ds, 4, false, 1);
  const Batch full = loader.full_batch();
  EXPECT_EQ(full.size(), 20);
  EXPECT_EQ(full.x.shape(), (Shape{20, 8, 8, 8}));
}

}  // namespace
}  // namespace snnskip
