// Tests for the deterministic data-parallel engine and the parallel
// candidate evaluator (DESIGN.md §5f): the shard decomposition and tree
// reduction are bit-for-bit invariant to the worker count, shards == 1
// reproduces the legacy serial step exactly, and the parallel BO path
// journals a replay-stable trajectory.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/adapter.h"
#include "core/evaluator.h"
#include "core/parallel_evaluator.h"
#include "data/synthetic_dvs_cifar.h"
#include "models/zoo.h"
#include "tensor/kernel_config.h"
#include "train/data_parallel.h"
#include "train/evaluate.h"
#include "train/trainer.h"

namespace snnskip {
namespace {

SyntheticConfig tiny_data() {
  SyntheticConfig cfg;
  cfg.height = 8;
  cfg.width = 8;
  cfg.timesteps = 4;
  cfg.train_size = 40;
  cfg.val_size = 20;
  cfg.test_size = 20;
  cfg.seed = 31;
  return cfg;
}

ModelConfig tiny_model() {
  ModelConfig cfg;
  cfg.mode = NeuronMode::Spiking;
  cfg.in_channels = 2;
  cfg.num_classes = 10;
  cfg.max_timesteps = 4;
  cfg.width = 4;
  cfg.seed = 5;
  return cfg;
}

Network tiny_net() {
  const ModelConfig mc = tiny_model();
  return build_model("single_block", mc,
                     default_adjacencies("single_block", mc));
}

TrainConfig tiny_train() {
  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 10;
  cfg.lr = 0.05f;
  cfg.timesteps = 4;
  cfg.seed = 17;
  return cfg;
}

Batch first_batch(const Dataset& ds, std::int64_t batch_size) {
  DataLoader loader(ds, batch_size, /*shuffle=*/false, 0);
  loader.start_epoch(0);
  Batch batch;
  EXPECT_TRUE(loader.next(batch));
  return batch;
}

/// Bitwise parameter equality (values AND grads).
void expect_params_identical(Network& a, Network& b) {
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->value.numel(), pb[i]->value.numel());
    EXPECT_EQ(std::memcmp(pa[i]->value.data(), pb[i]->value.data(),
                          static_cast<std::size_t>(pa[i]->value.numel()) *
                              sizeof(float)),
              0)
        << "value mismatch at parameter " << i << " (" << pa[i]->name << ")";
    EXPECT_EQ(std::memcmp(pa[i]->grad.data(), pb[i]->grad.data(),
                          static_cast<std::size_t>(pa[i]->grad.numel()) *
                              sizeof(float)),
              0)
        << "grad mismatch at parameter " << i << " (" << pa[i]->name << ")";
  }
}

// --- shard decomposition -----------------------------------------------------

TEST(ShardRange, PartitionCoversRangeDisjointly) {
  for (std::int64_t n : {1, 7, 8, 10, 16, 33}) {
    for (std::int64_t shards : {1, 2, 4, 8}) {
      const std::int64_t s_eff = std::min(shards, n);
      std::int64_t covered = 0;
      std::int64_t prev_end = 0;
      for (std::int64_t s = 0; s < s_eff; ++s) {
        const auto [b, e] = DataParallelEngine::shard_range(n, s_eff, s);
        EXPECT_EQ(b, prev_end);
        EXPECT_LE(e, n);
        covered += e - b;
        prev_end = e;
      }
      EXPECT_EQ(covered, n) << "n=" << n << " shards=" << s_eff;
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(DataParallelConfigResolve, WorkersComeFromEnvWhenUnset) {
  unsetenv("SNNSKIP_WORKERS");
  EXPECT_EQ(DataParallelEngine::resolve_workers({}), 1);
  setenv("SNNSKIP_WORKERS", "4", 1);
  EXPECT_EQ(DataParallelEngine::resolve_workers({}), 4);
  DataParallelConfig explicit_cfg;
  explicit_cfg.workers = 2;  // explicit config wins over the env
  EXPECT_EQ(DataParallelEngine::resolve_workers(explicit_cfg), 2);
  unsetenv("SNNSKIP_WORKERS");
  // Shard resolution: explicit config > tuned kernel config > builtin
  // default. Pin the kernel config so a loaded SNNSKIP_TUNE_PROFILE in
  // the test environment cannot skew the default-path assertions.
  const KernelConfig saved = kernel_config();
  set_kernel_config(KernelConfig{});
  EXPECT_EQ(DataParallelEngine::resolve_shards({}), kDataParallelDefaultShards);
  KernelConfig tuned = saved;
  tuned.shards = 2;
  set_kernel_config(tuned);
  EXPECT_EQ(DataParallelEngine::resolve_shards({}), 2);
  DataParallelConfig pinned;
  pinned.shards = 16;  // explicit config still wins over the profile
  EXPECT_EQ(DataParallelEngine::resolve_shards(pinned), 16);
  set_kernel_config(saved);
}

// --- encoder shard streams ---------------------------------------------------

TEST(EncoderCloneShard, PoissonStreamsAreDecorrelatedAndReproducible) {
  PoissonEncoder base(123, 1.f);
  Rng rng(9);
  const Tensor x = Tensor::rand(Shape{2, 2, 4, 4}, rng, 0.2f, 0.8f);

  auto a0 = base.clone_shard(0);
  auto a0_again = base.clone_shard(0);
  auto a1 = base.clone_shard(1);
  ASSERT_TRUE(a0 && a0_again && a1);
  const Tensor s0 = a0->encode(x, 0);
  const Tensor s0_again = a0_again->encode(x, 0);
  const Tensor s1 = a1->encode(x, 0);
  EXPECT_EQ(Tensor::max_abs_diff(s0, s0_again), 0.f);
  EXPECT_GT(Tensor::max_abs_diff(s0, s1), 0.f);
}

TEST(EncoderCloneShard, StatelessEncodersCloneAndBaseRefuses) {
  DirectEncoder direct;
  EXPECT_NE(direct.clone_shard(3), nullptr);
  EventEncoder event(4, 2);
  EXPECT_NE(event.clone_shard(0), nullptr);
  LatencyEncoder latency(4);
  EXPECT_NE(latency.clone_shard(1), nullptr);
}

// --- bit-for-bit worker invariance ------------------------------------------

// One sharded step at a given worker count; returns the trained net.
Network dp_step(std::int64_t workers, std::int64_t shards, const Batch& batch) {
  Network net = tiny_net();
  EventEncoder enc(4, 2);
  DataParallelConfig cfg;
  cfg.workers = workers;
  cfg.shards = shards;
  cfg.replica_factory = [] { return tiny_net(); };
  DataParallelEngine engine(net, cfg, enc, /*timesteps=*/4,
                            LossKind::MeanLogitCE);
  EXPECT_TRUE(engine.enabled());
  auto params = net.parameters();
  Sgd opt(params, 0.05f, 0.9f, 0.f);
  engine.train_batch(batch, opt, 5.f);
  return net;
}

TEST(DataParallel, TrainBatchBitIdenticalAt1248Workers) {
  SyntheticDvsCifar ds(tiny_data(), Split::Train);
  const Batch batch = first_batch(ds, 10);
  Network reference = dp_step(/*workers=*/1, /*shards=*/4, batch);
  for (std::int64_t workers : {2, 4, 8}) {
    Network net = dp_step(workers, /*shards=*/4, batch);
    expect_params_identical(reference, net);
  }
}

TEST(DataParallel, LossAndGradNormIdenticalAcrossWorkers) {
  SyntheticDvsCifar ds(tiny_data(), Split::Train);
  const Batch batch = first_batch(ds, 10);

  auto run = [&](std::int64_t workers, double* loss, double* norm) {
    Network net = tiny_net();
    EventEncoder enc(4, 2);
    DataParallelConfig cfg;
    cfg.workers = workers;
    cfg.shards = 8;
    cfg.replica_factory = [] { return tiny_net(); };
    DataParallelEngine engine(net, cfg, enc, 4, LossKind::MeanLogitCE);
    auto params = net.parameters();
    Sgd opt(params, 0.05f, 0.9f, 0.f);
    *loss = engine.train_batch(batch, opt, 5.f, norm);
  };

  double loss1 = 0, norm1 = 0;
  run(1, &loss1, &norm1);
  for (std::int64_t workers : {2, 8}) {
    double loss = 0, norm = 0;
    run(workers, &loss, &norm);
    EXPECT_EQ(loss, loss1);  // bitwise: the reduction tree is fixed-shape
    EXPECT_EQ(norm, norm1);
  }
}

TEST(DataParallel, FitBitIdenticalAcrossWorkers) {
  auto train_ds = std::make_shared<SyntheticDvsCifar>(tiny_data(), Split::Train);

  auto run_fit = [&](std::int64_t workers) {
    Network net = tiny_net();
    TrainConfig cfg = tiny_train();
    cfg.data_parallel.workers = workers;
    cfg.data_parallel.shards = 4;
    cfg.data_parallel.replica_factory = [] { return tiny_net(); };
    fit(net, NeuronMode::Spiking, train_ds, nullptr, cfg);
    return net;
  };

  Network reference = run_fit(1);
  for (std::int64_t workers : {2, 4, 8}) {
    Network net = run_fit(workers);
    expect_params_identical(reference, net);
  }
}

TEST(DataParallel, ShardsOneFallsBackToLegacySerialPath) {
  auto train_ds = std::make_shared<SyntheticDvsCifar>(tiny_data(), Split::Train);

  Network legacy = tiny_net();
  {
    TrainConfig cfg = tiny_train();
    fit(legacy, NeuronMode::Spiking, train_ds, nullptr, cfg);
  }
  Network shim = tiny_net();
  {
    TrainConfig cfg = tiny_train();
    cfg.data_parallel.shards = 1;  // engine disabled -> legacy path
    cfg.data_parallel.workers = 8;
    cfg.data_parallel.replica_factory = [] { return tiny_net(); };
    fit(shim, NeuronMode::Spiking, train_ds, nullptr, cfg);
  }
  expect_params_identical(legacy, shim);
}

TEST(DataParallel, SingleSampleBatchUsesLegacyStep) {
  SyntheticDvsCifar ds(tiny_data(), Split::Train);
  const Batch batch = first_batch(ds, 1);

  Network legacy = tiny_net();
  {
    EventEncoder enc(4, 2);
    auto params = legacy.parameters();
    Sgd opt(params, 0.05f, 0.9f, 0.f);
    train_batch(legacy, enc, batch, 4, opt, 5.f);
  }
  Network sharded = tiny_net();
  {
    EventEncoder enc(4, 2);
    DataParallelConfig cfg;
    cfg.shards = 8;
    cfg.replica_factory = [] { return tiny_net(); };
    DataParallelEngine engine(sharded, cfg, enc, 4, LossKind::MeanLogitCE);
    auto params = sharded.parameters();
    Sgd opt(params, 0.05f, 0.9f, 0.f);
    engine.train_batch(batch, opt, 5.f);  // N == 1 -> legacy delegation
  }
  expect_params_identical(legacy, sharded);
}

TEST(DataParallel, MismatchedReplicaFactoryThrows) {
  Network net = tiny_net();
  EventEncoder enc(4, 2);
  DataParallelConfig cfg;
  cfg.shards = 2;
  cfg.replica_factory = [] {
    ModelConfig mc = tiny_model();
    mc.width = 8;  // different channel widths -> different layout
    return build_model("single_block", mc,
                       default_adjacencies("single_block", mc));
  };
  EXPECT_THROW(DataParallelEngine(net, cfg, enc, 4, LossKind::MeanLogitCE),
               std::runtime_error);
}

// --- parallel candidate evaluation ------------------------------------------

CandidateEvaluator make_tiny_evaluator() {
  EvaluatorConfig cfg;
  cfg.model = "single_block";
  cfg.model_cfg = tiny_model();
  cfg.finetune = tiny_train();
  cfg.scratch = tiny_train();
  cfg.seed = 7;
  SyntheticConfig data = tiny_data();
  data.train_size = 30;
  return CandidateEvaluator(cfg, make_datasets("cifar10-dvs", data));
}

std::vector<EncodingVec> sample_codes(const CandidateEvaluator& ev,
                                      std::size_t k) {
  Rng rng(77);
  std::vector<EncodingVec> codes;
  for (std::size_t i = 0; i < k; ++i) codes.push_back(ev.space().sample(rng));
  return codes;
}

TEST(ParallelEvaluator, BatchResultsIdenticalAcrossWorkers) {
  CandidateEvaluator serial_ev = make_tiny_evaluator();
  CandidateEvaluator parallel_ev = make_tiny_evaluator();
  const std::vector<EncodingVec> codes = sample_codes(serial_ev, 3);

  ParallelCandidateEvaluator one(serial_ev, {.workers = 1});
  ParallelCandidateEvaluator four(parallel_ev, {.workers = 4});
  const auto ra = one.evaluate_shared_batch(0, codes);
  const auto rb = four.evaluate_shared_batch(0, codes);

  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].objective, rb[i].objective);  // bitwise doubles
    EXPECT_EQ(ra[i].val_accuracy, rb[i].val_accuracy);
    EXPECT_EQ(ra[i].failed, rb[i].failed);
  }
  EXPECT_TRUE(serial_ev.store().identical_to(parallel_ev.store()));
  EXPECT_EQ(serial_ev.evaluations(), 3u);
  EXPECT_EQ(parallel_ev.evaluations(), 3u);
}

TEST(ParallelEvaluator, CandidateSeedIsReplayStable) {
  EXPECT_EQ(ParallelCandidateEvaluator::candidate_seed(17, 4),
            ParallelCandidateEvaluator::candidate_seed(17, 4));
  EXPECT_NE(ParallelCandidateEvaluator::candidate_seed(17, 4),
            ParallelCandidateEvaluator::candidate_seed(17, 5));
}

TEST(ParallelEvaluator, BoJournalReplayReproducesTrajectory) {
  const std::string path =
      testing::TempDir() + "data_parallel_bo_journal.jsonl";
  std::remove(path.c_str());

  BoConfig bo;
  bo.iterations = 1;
  bo.batch_k = 2;
  bo.initial_design = 2;
  bo.candidate_pool = 8;
  bo.seed = 11;
  bo.journal_path = path;

  CandidateEvaluator ev_live = make_tiny_evaluator();
  const SearchTrace live = bo_trace_parallel(ev_live, bo, {.workers = 4});
  ASSERT_EQ(live.observations.size(), 4u);
  EXPECT_EQ(live.replayed, 0u);

  // Fresh evaluator, same journal: the whole trajectory replays — zero
  // live fine-tunes — and matches the recorded one observation-for-
  // observation.
  CandidateEvaluator ev_replay = make_tiny_evaluator();
  const SearchTrace replayed = bo_trace_parallel(ev_replay, bo, {.workers = 4});
  EXPECT_EQ(replayed.replayed, replayed.observations.size());
  EXPECT_EQ(ev_replay.evaluations(), 0u);
  ASSERT_EQ(replayed.observations.size(), live.observations.size());
  for (std::size_t i = 0; i < live.observations.size(); ++i) {
    EXPECT_EQ(replayed.observations[i].code, live.observations[i].code);
    EXPECT_EQ(replayed.observations[i].value, live.observations[i].value);
  }
  EXPECT_EQ(replayed.best, live.best);
  std::remove(path.c_str());
}

TEST(ParallelEvaluator, TruncatedJournalResumesWithStableSeeds) {
  const std::string path =
      testing::TempDir() + "data_parallel_bo_journal_trunc.jsonl";
  std::remove(path.c_str());

  BoConfig bo;
  bo.iterations = 1;
  bo.batch_k = 2;
  bo.initial_design = 2;
  bo.candidate_pool = 8;
  bo.seed = 11;
  bo.journal_path = path;

  CandidateEvaluator ev_live = make_tiny_evaluator();
  const SearchTrace live = bo_trace_parallel(ev_live, bo, {.workers = 1});

  // Simulate a crash after the initial design: keep the first two rows.
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 4u);
  {
    std::ofstream out(path, std::ios::trunc);
    out << lines[0] << "\n" << lines[1] << "\n";
  }

  // Resume with a different worker count. Proposals are a pure function of
  // (config seed, observed values), and the replayed prefix restores the
  // recorded values — so every CODE matches the uninterrupted run, and the
  // prefix VALUES match exactly. (Suffix values may differ: the journal
  // replays observations, not the weight-store evolution behind them.)
  CandidateEvaluator ev_resume = make_tiny_evaluator();
  const SearchTrace resumed = bo_trace_parallel(ev_resume, bo, {.workers = 4});
  EXPECT_EQ(resumed.replayed, 2u);
  ASSERT_EQ(resumed.observations.size(), live.observations.size());
  for (std::size_t i = 0; i < live.observations.size(); ++i) {
    EXPECT_EQ(resumed.observations[i].code, live.observations[i].code);
  }
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(resumed.observations[i].value, live.observations[i].value);
    EXPECT_TRUE(std::isfinite(resumed.observations[i].value));
  }
  EXPECT_TRUE(std::isfinite(resumed.observations[2].value));
  EXPECT_TRUE(std::isfinite(resumed.observations[3].value));
  std::remove(path.c_str());
}

// --- random search batching --------------------------------------------------

TEST(RandomSearchBatch, BatchedProposalsMatchSerial) {
  // A cheap synthetic problem: no observe_batch, so batch_k only changes
  // the loop structure and the trajectory must be identical to serial.
  BoProblem problem;
  problem.sample = [](Rng& rng) {
    EncodingVec code(4);
    for (int& v : code) v = static_cast<int>(rng.next() % 3);
    return code;
  };
  problem.featurize = [](const EncodingVec& code) {
    return one_hot_features(code);
  };
  problem.objective = [](const EncodingVec& code) {
    double v = 0;
    for (std::size_t i = 0; i < code.size(); ++i)
      v += static_cast<double>(code[i]) * static_cast<double>(i + 1);
    return v;
  };

  RsConfig serial;
  serial.evaluations = 9;
  serial.seed = 13;
  RsConfig batched = serial;
  batched.batch_k = 4;

  const SearchTrace a = run_random_search(problem, serial);
  const SearchTrace b = run_random_search(problem, batched);
  ASSERT_EQ(a.observations.size(), b.observations.size());
  for (std::size_t i = 0; i < a.observations.size(); ++i) {
    EXPECT_EQ(a.observations[i].code, b.observations[i].code);
    EXPECT_EQ(a.observations[i].value, b.observations[i].value);
  }
  EXPECT_EQ(a.best_value, b.best_value);
}

TEST(RandomSearchBatch, ObserveBatchReceivesGlobalIndices) {
  BoProblem problem;
  problem.sample = [](Rng& rng) {
    EncodingVec code(3);
    for (int& v : code) v = static_cast<int>(rng.next() % 4);
    return code;
  };
  problem.featurize = [](const EncodingVec& code) {
    return one_hot_features(code);
  };
  problem.objective = [](const EncodingVec&) { return 0.0; };
  std::vector<std::size_t> starts;
  std::vector<std::size_t> sizes;
  problem.observe_batch = [&](std::size_t start,
                              const std::vector<EncodingVec>& codes) {
    starts.push_back(start);
    sizes.push_back(codes.size());
    std::vector<Observation> obs(codes.size());
    for (std::size_t i = 0; i < codes.size(); ++i) {
      obs[i].code = codes[i];
      obs[i].value = static_cast<double>(start + i);
    }
    return obs;
  };

  RsConfig cfg;
  cfg.evaluations = 7;
  cfg.batch_k = 3;
  cfg.seed = 13;
  const SearchTrace trace = run_random_search(problem, cfg);
  ASSERT_EQ(trace.observations.size(), 7u);
  // Rounds of 3, 3, 1: the final singleton goes through the serial path.
  EXPECT_EQ(starts, (std::vector<std::size_t>{0, 3}));
  EXPECT_EQ(sizes, (std::vector<std::size_t>{3, 3}));
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(trace.observations[i].value, static_cast<double>(i));
  }
}

}  // namespace
}  // namespace snnskip
