// Tests for the int8 quantized inference building blocks (ISSUE 10): the
// quantized kernel layer (per-channel round-trip, int32 accumulator
// headroom at the kernels' maximum reduction depth, scalar-vs-AVX2 bit
// identity, packed event kernels vs dense GEMM references) and the
// CRC-sealed QuantProfile calibration format. Plan-level int8 behavior
// (ADD-join rescale, packed-vs-dense parity, weight shrink) lives in
// infer_test; serve-side self-calibration in serve_test.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "infer/compile.h"
#include "infer/engine.h"
#include "infer/quant.h"
#include "models/zoo.h"
#include "tensor/cpu_features.h"
#include "tensor/im2col.h"
#include "tensor/quant_kernels.h"
#include "tensor/spike_packed.h"
#include "util/rng.h"

namespace snnskip {
namespace {

bool avx2_available() { return simd_avx2_compiled() && cpu_has_avx2(); }

#define SKIP_WITHOUT_AVX2()                                            \
  if (!avx2_available()) {                                             \
    GTEST_SKIP() << "AVX2 not compiled in or not supported by host";   \
  }

/// Restore the process-wide SIMD level after each test.
class QuantTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_level_ = active_simd(); }
  void TearDown() override { set_active_simd(saved_level_); }

 private:
  SimdLevel saved_level_ = SimdLevel::Scalar;
};

std::vector<float> randu(std::int64_t n, std::uint64_t seed,
                         float lo = -1.f, float hi = 1.f) {
  Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (float& x : v) x = rng.uniform(lo, hi);
  return v;
}

std::vector<float> spikes(std::int64_t n, std::uint64_t seed, float density) {
  Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (float& x : v) x = rng.uniform(0.f, 1.f) < density ? 1.f : 0.f;
  return v;
}

// --- quantize edge ----------------------------------------------------------

TEST_F(QuantTest, PerChannelScaleRoundTrip) {
  // The compile-time weight scheme applied through the runtime quantize
  // kernel: per-row S[o] = absmax / 127 keeps every code in [-127, 127],
  // maps the absmax element to +/-127 exactly, and bounds the dequantized
  // error by half a step.
  const std::int64_t rows = 7, cols = 33;
  const auto w = randu(rows * cols, 17, -3.f, 3.f);
  for (std::int64_t o = 0; o < rows; ++o) {
    const float* row = w.data() + o * cols;
    float absmax = 0.f;
    std::int64_t arg = 0;
    for (std::int64_t i = 0; i < cols; ++i) {
      if (std::fabs(row[i]) > absmax) {
        absmax = std::fabs(row[i]);
        arg = i;
      }
    }
    ASSERT_GT(absmax, 0.f);
    const float s = absmax / 127.f;
    std::vector<std::int8_t> q(static_cast<std::size_t>(cols));
    quantize_int8(cols, row, 1.f / s, q.data());
    for (std::int64_t i = 0; i < cols; ++i) {
      EXPECT_GE(q[static_cast<std::size_t>(i)], -127);
      EXPECT_LE(q[static_cast<std::size_t>(i)], 127);
      EXPECT_LE(std::fabs(static_cast<float>(q[static_cast<std::size_t>(i)]) *
                              s - row[i]),
                0.5001f * s)
          << "row " << o << " col " << i;
    }
    EXPECT_EQ(std::abs(static_cast<int>(q[static_cast<std::size_t>(arg)])),
              127);
  }
}

TEST_F(QuantTest, QuantizeRecoversExactCodes) {
  // Inputs that ARE code points (q * s) must survive the round-trip
  // bit-exactly — this is what makes binary-spike quantization at step
  // 1.0 lossless on the int8 dense path.
  const float s = 0.037f;
  std::vector<float> src;
  std::vector<int> want;
  for (int q = -127; q <= 127; q += 3) {
    src.push_back(static_cast<float>(q) * s);
    want.push_back(q);
  }
  std::vector<std::int8_t> got(src.size());
  quantize_int8(static_cast<std::int64_t>(src.size()), src.data(), 1.f / s,
                got.data());
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(static_cast<int>(got[i]), want[i]) << "q=" << want[i];
  }
  // Out-of-range magnitudes saturate instead of wrapping.
  const float big[2] = {1000.f, -1000.f};
  std::int8_t sat[2];
  quantize_int8(2, big, 1.f, sat);
  EXPECT_EQ(sat[0], 127);
  EXPECT_EQ(sat[1], -127);
}

// --- int32 accumulator headroom ---------------------------------------------

TEST_F(QuantTest, AccumulatorNeverOverflowsAtMaxReductionDepth) {
  // Worst case per output element: k full-magnitude products of 127*127.
  // The deepest reduction any plan can produce is the largest conv
  // column (C*K*K) or linear fan-in; even at an absurd k = 2^17 the
  // int32 accumulator has headroom (2^17 * 127^2 < 2^31), so real
  // geometries (C <= 512, K <= 3 => k <= 4608) sit 400x below the edge.
  const std::int64_t k = std::int64_t{1} << 17;
  ASSERT_LT(k * 127 * 127, std::int64_t{1} << 31);
  std::vector<std::int8_t> a(static_cast<std::size_t>(k));
  std::vector<std::int8_t> b(static_cast<std::size_t>(k));
  for (std::int64_t i = 0; i < k; ++i) {
    // Alternate signs so both operands exercise negative lanes while
    // every product stays at the positive extreme.
    const std::int8_t v = (i & 1) ? std::int8_t{-127} : std::int8_t{127};
    a[static_cast<std::size_t>(i)] = v;
    b[static_cast<std::size_t>(i)] = v;
  }
  std::int32_t c = 0;
  gemm_s8s32_nt(1, 1, k, a.data(), b.data(), &c);
  EXPECT_EQ(static_cast<std::int64_t>(c), k * 127 * 127);
}

// --- scalar vs AVX2 bit identity --------------------------------------------

TEST_F(QuantTest, KernelsBitIdenticalAcrossSimdLevels) {
  SKIP_WITHOUT_AVX2();
  // Odd sizes straddle the 32-lane quantize width, the 8-lane convert
  // width, and the gemm tile edges — the tails are where a vector port
  // diverges first.
  for (const std::int64_t n : {1, 7, 31, 32, 33, 257}) {
    const auto src = randu(n, 100 + static_cast<std::uint64_t>(n), -9.f, 9.f);
    std::vector<std::int8_t> qs(static_cast<std::size_t>(n));
    std::vector<std::int8_t> qv(static_cast<std::size_t>(n));
    std::vector<std::int32_t> is(static_cast<std::size_t>(n));
    std::vector<float> fs(static_cast<std::size_t>(n));
    std::vector<float> fv(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      is[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(i * 7 - n);
    }
    ASSERT_EQ(set_active_simd(SimdLevel::Scalar), SimdLevel::Scalar);
    quantize_int8(n, src.data(), 3.7f, qs.data());
    convert_i32_to_f32(n, is.data(), fs.data());
    ASSERT_EQ(set_active_simd(SimdLevel::Avx2), SimdLevel::Avx2);
    quantize_int8(n, src.data(), 3.7f, qv.data());
    convert_i32_to_f32(n, is.data(), fv.data());
    EXPECT_EQ(std::memcmp(qs.data(), qv.data(), qs.size()), 0) << "n=" << n;
    EXPECT_EQ(std::memcmp(fs.data(), fv.data(), fs.size() * sizeof(float)),
              0)
        << "n=" << n;
  }

  struct Case {
    std::int64_t m, n, k;
  };
  for (const Case gc : {Case{1, 1, 1}, Case{3, 5, 7}, Case{13, 31, 33},
                        Case{16, 16, 64}, Case{5, 17, 131}}) {
    Rng rng(7 + static_cast<std::uint64_t>(gc.k));
    std::vector<std::int8_t> a(static_cast<std::size_t>(gc.m * gc.k));
    std::vector<std::int8_t> b(static_cast<std::size_t>(gc.n * gc.k));
    for (auto& x : a) {
      x = static_cast<std::int8_t>(rng.uniform(-127.49f, 127.49f));
    }
    for (auto& x : b) {
      x = static_cast<std::int8_t>(rng.uniform(-127.49f, 127.49f));
    }
    std::vector<std::int32_t> cs(static_cast<std::size_t>(gc.m * gc.n));
    std::vector<std::int32_t> cv(static_cast<std::size_t>(gc.m * gc.n));
    ASSERT_EQ(set_active_simd(SimdLevel::Scalar), SimdLevel::Scalar);
    gemm_s8s32_nt(gc.m, gc.n, gc.k, a.data(), b.data(), cs.data());
    ASSERT_EQ(set_active_simd(SimdLevel::Avx2), SimdLevel::Avx2);
    gemm_s8s32_nt(gc.m, gc.n, gc.k, a.data(), b.data(), cv.data());
    EXPECT_EQ(std::memcmp(cs.data(), cv.data(),
                          cs.size() * sizeof(std::int32_t)),
              0)
        << "m=" << gc.m << " n=" << gc.n << " k=" << gc.k;
  }
}

// --- packed event kernels ---------------------------------------------------

TEST_F(QuantTest, PackedConvTermI8MatchesGemmReference) {
  // The int8 event walk must agree exactly with the dense route the
  // engine's dense branch takes: im2row patches, spike codes (exactly 0
  // or 1 at unit step), gemm_s8s32_nt against the same weight rows.
  const ConvGeometry g{6, 9, 7, 3, 2, 1};
  const std::int64_t o_c = 5;
  const std::int64_t in_n = g.in_c * g.in_h * g.in_w;
  const std::int64_t ckk = g.col_rows();
  const std::int64_t p = g.out_h() * g.out_w();
  const auto x = spikes(in_n, 23, 0.25f);

  Rng rng(29);
  std::vector<std::int8_t> wrows(static_cast<std::size_t>(o_c * ckk));
  for (auto& w : wrows) {
    w = static_cast<std::int8_t>(rng.uniform(-127.49f, 127.49f));
  }
  std::vector<std::int8_t> wt(static_cast<std::size_t>(ckk * o_c));
  for (std::int64_t o = 0; o < o_c; ++o) {
    for (std::int64_t r = 0; r < ckk; ++r) {
      wt[static_cast<std::size_t>(r * o_c + o)] =
          wrows[static_cast<std::size_t>(o * ckk + r)];
    }
  }

  // Dense reference.
  std::vector<float> patches(static_cast<std::size_t>(ckk * p));
  im2row(g, x.data(), patches.data());
  std::vector<std::int8_t> pq(patches.size());
  quantize_int8(ckk * p, patches.data(), 1.f, pq.data());
  std::vector<std::int32_t> ref(static_cast<std::size_t>(o_c * p));
  gemm_s8s32_nt(o_c, p, ckk, wrows.data(), pq.data(), ref.data());

  // Packed event walk.
  std::vector<std::uint64_t> words(
      static_cast<std::size_t>(packed_words(in_n)));
  ASSERT_GE(spike_pack(x.data(), in_n, words.data()), 0);
  std::vector<std::int32_t> panel(static_cast<std::size_t>(p * o_c), 0);
  const std::int64_t synops = spike_packed_conv2d_term_i8(
      g, g.in_c, words.data(), nullptr, wt.data(), o_c, panel.data());
  EXPECT_GT(synops, 0);
  for (std::int64_t o = 0; o < o_c; ++o) {
    for (std::int64_t j = 0; j < p; ++j) {
      EXPECT_EQ(panel[static_cast<std::size_t>(j * o_c + o)],
                ref[static_cast<std::size_t>(o * p + j)])
          << "o=" << o << " j=" << j;
    }
  }

  // And bit identity across SIMD levels on the same inputs.
  if (avx2_available()) {
    std::vector<std::int32_t> vpanel(panel.size(), 0);
    ASSERT_EQ(set_active_simd(SimdLevel::Avx2), SimdLevel::Avx2);
    EXPECT_EQ(spike_packed_conv2d_term_i8(g, g.in_c, words.data(), nullptr,
                                          wt.data(), o_c, vpanel.data()),
              synops);
    EXPECT_EQ(std::memcmp(panel.data(), vpanel.data(),
                          panel.size() * sizeof(std::int32_t)),
              0);
  }
}

TEST_F(QuantTest, PackedDepthwiseTermI8MatchesFloatTwin) {
  // Int8 codes are exactly representable as floats and spike-event
  // accumulation of them is exact in fp32 too (sums stay far below 2^24),
  // so the trusted float depthwise kernel doubles as a reference.
  const ConvGeometry g{5, 8, 9, 3, 1, 1};
  const std::int64_t in_n = g.in_c * g.in_h * g.in_w;
  const std::int64_t out_n = g.in_c * g.out_h() * g.out_w();
  const auto x = spikes(in_n, 31, 0.3f);

  Rng rng(37);
  std::vector<std::int8_t> bank(
      static_cast<std::size_t>(g.in_c * g.kernel * g.kernel));
  std::vector<float> fbank(bank.size());
  for (std::size_t i = 0; i < bank.size(); ++i) {
    bank[i] = static_cast<std::int8_t>(rng.uniform(-127.49f, 127.49f));
    fbank[i] = static_cast<float>(bank[i]);
  }

  std::vector<std::uint64_t> words(
      static_cast<std::size_t>(packed_words(in_n)));
  ASSERT_GE(spike_pack(x.data(), in_n, words.data()), 0);
  std::vector<float> facc(static_cast<std::size_t>(out_n), 0.f);
  const std::int64_t fsyn = spike_packed_depthwise_term(
      g, g.in_c, words.data(), nullptr, fbank.data(), facc.data());
  std::vector<std::int32_t> iacc(static_cast<std::size_t>(out_n), 0);
  const std::int64_t isyn = spike_packed_depthwise_term_i8(
      g, g.in_c, words.data(), nullptr, bank.data(), iacc.data());
  EXPECT_EQ(fsyn, isyn);
  for (std::int64_t i = 0; i < out_n; ++i) {
    EXPECT_EQ(static_cast<float>(iacc[static_cast<std::size_t>(i)]),
              facc[static_cast<std::size_t>(i)])
        << "i=" << i;
  }
}

// --- calibration + profile format -------------------------------------------

TEST_F(QuantTest, CalibrationCoversWeightOpsAndRejectsInt8Plans) {
  ModelConfig cfg;
  cfg.width = 8;
  cfg.in_channels = 2;
  cfg.num_classes = 10;
  cfg.max_timesteps = 8;
  cfg.seed = 7;
  Network net = build_model("single_block", cfg,
                            default_adjacencies("single_block", cfg));
  const Shape in{2, cfg.in_channels, 8, 8};
  const infer::PlanPtr plan = infer::compile(net, in);

  Rng rng(41);
  std::vector<std::vector<Tensor>> seqs(2);
  for (auto& seq : seqs) {
    for (int t = 0; t < 3; ++t) {
      seq.push_back(Tensor::bernoulli(in, rng, 0.3f));
    }
  }
  const infer::QuantProfile prof = infer::calibrate_quant(plan, seqs);
  EXPECT_EQ(prof.model, plan->model_name);
  ASSERT_FALSE(prof.op_amax.empty());
  bool any_positive = false;
  for (const auto& [name, v] : prof.op_amax) {
    EXPECT_FALSE(name.empty());
    EXPECT_GE(v, 0.f) << name;
    any_positive = any_positive || v > 0.f;
  }
  // The head linear consumes pooled (analog) activations — a sweep that
  // never sees a positive range calibrated nothing.
  EXPECT_TRUE(any_positive);
  EXPECT_EQ(prof.amax_for("no-such-op", 2.5f), 2.5f);

  infer::CompileOptions qopts;
  qopts.precision = infer::Precision::Int8;
  qopts.quant = &prof;
  const infer::PlanPtr q = infer::compile(net, in, qopts);
  EXPECT_THROW(infer::calibrate_quant(q, seqs), std::invalid_argument);
}

TEST_F(QuantTest, ProfileSerializeParseRoundTripAndCorruptionRejection) {
  infer::QuantProfile p;
  p.model = "resnet18s-w8";
  // Awkward values: subnormal-adjacent, repeating-fraction, exact power
  // of two — hexfloat must round-trip each bit-exactly.
  p.op_amax = {{"stem", 1.f}, {"block0.conv1", 0.1f},
               {"head", 3.1415927f}, {"tiny", 1e-30f}};
  const std::string text = infer::serialize_quant_profile(p);
  EXPECT_NE(text.find("snnskip-quant-profile-v1"), std::string::npos);
  EXPECT_NE(text.find("crc32 "), std::string::npos);

  infer::QuantProfile out;
  std::string err;
  ASSERT_TRUE(infer::parse_quant_profile(text, &out, &err)) << err;
  EXPECT_EQ(out.model, p.model);
  ASSERT_EQ(out.op_amax.size(), p.op_amax.size());
  for (std::size_t i = 0; i < p.op_amax.size(); ++i) {
    EXPECT_EQ(out.op_amax[i].first, p.op_amax[i].first);
    EXPECT_EQ(out.op_amax[i].second, p.op_amax[i].second);  // bit-exact
  }

  // One flipped body byte must fail the seal, not silently change a range.
  std::string corrupt = text;
  const std::size_t at = corrupt.find("head");
  ASSERT_NE(at, std::string::npos);
  corrupt[at] = 'H';
  EXPECT_FALSE(infer::parse_quant_profile(corrupt, &out, &err));
  EXPECT_NE(err.find("checksum"), std::string::npos) << err;

  // A truncated file (seal line lost) is rejected too.
  const std::string truncated = text.substr(0, text.rfind("crc32 "));
  EXPECT_FALSE(infer::parse_quant_profile(truncated, &out, &err));
  EXPECT_FALSE(infer::parse_quant_profile("", &out, &err));
}

}  // namespace
}  // namespace snnskip
