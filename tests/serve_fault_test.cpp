// Chaos drills for the fault-tolerant serve path (ISSUE 8).
//
// Every deterministic fault site wired into the transport, the server
// core and the model registry gets a drill that arms it, drives real
// traffic through the full loopback stack (serve::Client -> TCP ->
// SocketServer -> Server -> Engine), and asserts the documented recovery:
//
//   serve.frame_torn        -> CrcError response, connection survives
//   serve.client_disconnect -> response dropped, lease still freed
//   serve.accept_fail       -> listener keeps accepting
//   serve.read_stall        -> io_timeout_ms reaps the connection
//   serve.engine_nan        -> batch fails, model quarantined + reloaded
//   serve.manifest_corrupt  -> model skipped, registry undamaged
//
// plus deadline shedding (in-process and over the wire), quarantine
// reload failure (model unregistered, daemon lives), bounded drain, and
// goaway-on-shutdown. The closing soak runs 4 clients x 2 models over
// loopback with several sites armed at once; every final result must
// still match a direct-engine reference at 1e-4. The whole suite runs
// under TSan in CI (scripts/run_sanitizers.sh --tsan).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fault/inject.h"
#include "infer/engine.h"
#include "serve/client.h"
#include "serve/model_registry.h"
#include "serve/options.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "train/checkpoint.h"
#include "util/rng.h"
#include "util/timer.h"

namespace snnskip {
namespace {

using serve::Client;
using serve::ClientOptions;
using serve::LoadedModel;
using serve::ModelHandle;
using serve::ModelRegistry;
using serve::ModelSpec;
using serve::ServeOptions;
using serve::Server;
using serve::SocketServer;

ModelSpec tiny_spec(const std::string& name, std::int64_t batch = 2) {
  ModelSpec spec;
  spec.name = name;
  spec.family = "single_block";
  spec.config.width = 8;
  spec.config.in_channels = 2;
  spec.config.num_classes = 10;
  spec.config.max_timesteps = 4;
  spec.config.seed = 7;
  spec.config.lif.threshold = 0.25f;  // keep the tiny net firing
  spec.warm_bn_steps = 4;
  spec.batch = batch;
  return spec;
}

std::vector<Tensor> request_frames(const Shape& frame, std::int64_t steps,
                                   std::uint64_t seed, float p = 0.3f) {
  Rng rng(seed);
  std::vector<Tensor> frames;
  for (std::int64_t t = 0; t < steps; ++t) {
    frames.push_back(Tensor::bernoulli(frame, rng, p));
  }
  return frames;
}

Tensor direct_reference(const ModelHandle& model,
                        const std::vector<Tensor>& frames) {
  const infer::Plan& plan = *model->plan();
  const std::int64_t n = plan.input_shape[0];
  const std::int64_t classes = plan.output_shape.numel() / n;
  LoadedModel::Lease lease = model->lease();
  lease->reset();
  Tensor x(plan.input_shape);
  Tensor out;
  Tensor acc(Shape{classes});
  const std::int64_t img = x.numel() / n;
  for (const Tensor& f : frames) {
    x.fill(0.f);
    std::copy(f.data(), f.data() + img, x.data());
    lease->step(x, &out);
    for (std::int64_t c = 0; c < classes; ++c) {
      acc.data()[c] += out.data()[c];
    }
  }
  return acc;
}

ServeOptions fast_opts() {
  ServeOptions opts;
  opts.max_batch = 2;
  opts.latency_budget_us = 1000;
  opts.linger_us = 100;
  opts.queue_capacity = 64;
  opts.workers = 2;
  return opts;
}

ClientOptions client_opts(int port) {
  ClientOptions o;
  o.port = port;
  o.io_timeout_ms = 2000;
  o.backoff_base_us = 100;
  o.backoff_cap_us = 5000;
  return o;
}

/// Spin until `pred` holds or ~5s elapse (transport counters are bumped
/// asynchronously to the client-visible completion).
template <typename Pred>
bool eventually(Pred pred) {
  Timer t;
  while (!pred()) {
    if (t.elapsed_ms() > 5000.0) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

class ServeFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }
};

// --- deadline propagation ---------------------------------------------------

TEST_F(ServeFaultTest, ExpiredDeadlineIsShedBeforeBatchAssembly) {
  ModelRegistry reg(4);
  ServeOptions opts = fast_opts();
  opts.latency_budget_us = 100'000;  // keep the cut far away: shed must win
  opts.linger_us = 100'000;
  Server server(reg, opts);
  const ModelSpec spec = tiny_spec("dl");
  server.add_model(spec);
  const Shape frame{spec.config.in_channels, spec.in_h, spec.in_w};

  serve::SubmitOptions sub;
  sub.deadline_ns = serve::wire::mono_now_ns() - 1;  // already expired
  Server::Ticket t = server.submit("dl", request_frames(frame, 4, 1), sub);
  ASSERT_TRUE(t.accepted);  // admission does not shed; the dispatcher does
  try {
    (void)t.result.get();
    FAIL() << "expired request returned a value";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("deadline expired"),
              std::string::npos)
        << e.what();
  }
  const serve::ServeStats stats = server.stats();
  EXPECT_EQ(stats.expired, 1);
  EXPECT_EQ(stats.completed, 0);
  EXPECT_EQ(stats.failed, 0);  // shed != failed: no engine time was spent

  // A request with a generous deadline on the same server completes.
  sub.deadline_ns = serve::wire::mono_now_ns() + 10'000'000'000ll;
  Server::Ticket ok = server.submit("dl", request_frames(frame, 4, 2), sub);
  ASSERT_TRUE(ok.accepted);
  EXPECT_NO_THROW((void)ok.result.get());
}

TEST_F(ServeFaultTest, DeadlineExpiresInQueueOverTheWire) {
  // The deadline crosses the wire as an absolute monotonic timestamp; a
  // request that waits out its budget in the server queue comes back
  // Expired, which the client treats as terminal (no pointless retries).
  ModelRegistry reg(4);
  ServeOptions opts = fast_opts();
  opts.latency_budget_us = 500'000;  // hold the batch open well past the
  opts.linger_us = 500'000;          // 20ms deadline below
  Server server(reg, opts);
  const ModelSpec spec = tiny_spec("wd");
  server.add_model(spec);
  SocketServer sock(server, opts);

  Client client(client_opts(sock.port()));
  const Shape frame{spec.config.in_channels, spec.in_h, spec.in_w};
  const std::int64_t deadline =
      serve::wire::mono_now_ns() + 20'000'000;  // +20ms
  const Client::Result res =
      client.infer("wd", request_frames(frame, 4, 3), deadline);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.status, serve::wire::Status::Expired);
  EXPECT_EQ(res.retries, 0);  // terminal on the first answer
  EXPECT_EQ(server.stats().expired, 1);
}

// --- model quarantine -------------------------------------------------------

TEST_F(ServeFaultTest, EngineNanQuarantinesAndReloadsModel) {
  ModelRegistry reg(4);
  Server server(reg, fast_opts());
  const ModelSpec spec = tiny_spec("q");
  server.add_model(spec);
  ModelHandle original = reg.load(spec);  // cache hit: pre-quarantine copy
  const Shape frame{spec.config.in_channels, spec.in_h, spec.in_w};
  const auto frames = request_frames(frame, 4, 5);
  const Tensor ref = direct_reference(original, frames);
  ASSERT_EQ(reg.cold_loads(), 1);

  fault::arm("serve.engine_nan", {.fire_at = 0, .count = 1});
  std::mutex mu;
  bool settled = false;
  serve::Outcome poisoned;
  server.submit_async("q", frames, {}, [&](serve::Outcome o) {
    std::lock_guard<std::mutex> lock(mu);
    poisoned = std::move(o);
    settled = true;
  });
  ASSERT_TRUE(eventually([&] {
    std::lock_guard<std::mutex> lock(mu);
    return settled;
  }));
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(poisoned.status, serve::RequestStatus::Failed);
    EXPECT_NE(poisoned.error.find("quarantined"), std::string::npos)
        << poisoned.error;
  }

  // Quarantine completed BEFORE the failure was reported: the reload is
  // already visible, so an immediate retry hits the fresh copy and — the
  // fixed warmup stream being bit-reproducible — returns the exact
  // pre-quarantine answer.
  const serve::ServeStats stats = server.stats();
  EXPECT_EQ(stats.quarantined, 1);
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(reg.cold_loads(), 2);  // evict + cold reload
  const Tensor retried = server.infer("q", frames);
  EXPECT_EQ(Tensor::max_abs_diff(retried, ref), 0.f);
}

TEST_F(ServeFaultTest, QuarantineReloadFailureUnregistersModel) {
  // The checkpoint goes bad on disk AFTER the model was serving: the
  // quarantine reload fails, the model is unregistered, and the daemon —
  // not just the test — stays alive for its other models.
  const ModelSpec base = tiny_spec("gone");
  Network net = build_model(base.family, base.config,
                            default_adjacencies(base.family, base.config));
  const std::string ckpt = ::testing::TempDir() + "/quarantine.snnskip2";
  ASSERT_TRUE(save_network(ckpt, net));

  ModelRegistry reg(4);
  Server server(reg, fast_opts());
  ModelSpec spec = base;
  spec.checkpoint = ckpt;
  spec.warm_bn_steps = 0;
  server.add_model(spec);
  server.add_model(tiny_spec("healthy"));
  std::remove(ckpt.c_str());  // reload will find nothing to restore

  const Shape frame{spec.config.in_channels, spec.in_h, spec.in_w};
  fault::arm("serve.engine_nan", {.fire_at = 0, .count = 1});
  std::mutex mu;
  bool settled = false;
  serve::Outcome out;
  server.submit_async("gone", request_frames(frame, 4, 7), {},
                      [&](serve::Outcome o) {
                        std::lock_guard<std::mutex> lock(mu);
                        out = std::move(o);
                        settled = true;
                      });
  ASSERT_TRUE(eventually([&] {
    std::lock_guard<std::mutex> lock(mu);
    return settled;
  }));
  EXPECT_EQ(out.status, serve::RequestStatus::Failed);

  EXPECT_EQ(server.stats().quarantined, 1);
  // Unregistered: submits now report the model unknown...
  EXPECT_THROW((void)server.submit("gone", request_frames(frame, 4, 8)),
               std::invalid_argument);
  // ...while the healthy model keeps serving.
  EXPECT_NO_THROW((void)server.infer("healthy", request_frames(frame, 4, 9)));
}

TEST_F(ServeFaultTest, ManifestCorruptFaultSkipsModelRecoverably) {
  const std::string path = ::testing::TempDir() + "/chaos.manifest";
  {
    std::ofstream out(path);
    out << "name chaos\nfamily single_block\nwidth 8\n"
        << "timesteps 4\nwarm_bn_steps 4\nbatch 2\n";
  }
  ModelRegistry reg(4);
  fault::arm("serve.manifest_corrupt", {.fire_at = 0, .count = 1});
  std::string err;
  EXPECT_EQ(reg.try_load(path, &err), nullptr);
  EXPECT_NE(err.find("cannot read manifest"), std::string::npos) << err;
  EXPECT_EQ(reg.resident(), 0u);
  // The registry is undamaged: the same manifest loads once the fault
  // clears (a transient I/O error, not a poisoned cache).
  EXPECT_NE(reg.try_load(path, &err), nullptr);
  std::remove(path.c_str());
}

// --- transport chaos --------------------------------------------------------

TEST_F(ServeFaultTest, TornRequestFrameKeepsConnectionAlive) {
  ModelRegistry reg(4);
  Server server(reg, fast_opts());
  const ModelSpec spec = tiny_spec("t");
  server.add_model(spec);
  ModelHandle direct = reg.load(spec);
  SocketServer sock(server, fast_opts());

  fault::arm("serve.frame_torn", {.fire_at = 0, .count = 1});
  Client client(client_opts(sock.port()));
  const Shape frame{spec.config.in_channels, spec.in_h, spec.in_w};
  const auto frames = request_frames(frame, 4, 11);
  const Client::Result res = client.infer("t", frames);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.retries, 1);  // exactly one CrcError round-trip
  EXPECT_LE(Tensor::max_abs_diff(res.value, direct_reference(direct, frames)),
            1e-4f);
  const SocketServer::TransportStats ts = sock.stats();
  EXPECT_EQ(ts.frames_torn, 1);
  EXPECT_EQ(ts.connections, 1);  // the resend reused the same connection
}

TEST_F(ServeFaultTest, ClientDisconnectDropsResponseButFreesLease) {
  ModelRegistry reg(4);
  Server server(reg, fast_opts());
  const ModelSpec spec = tiny_spec("cd");
  server.add_model(spec);
  SocketServer sock(server, fast_opts());

  fault::arm("serve.client_disconnect", {.fire_at = 0, .count = 1});
  Client client(client_opts(sock.port()));
  const Shape frame{spec.config.in_channels, spec.in_h, spec.in_w};
  const Client::Result res = client.infer("cd", request_frames(frame, 4, 13));
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_GE(res.retries, 1);

  // The disconnected request still EXECUTED (the server never cancels a
  // submitted batch) and its response was dropped, not leaked; the lease
  // went back to the pool, which is why the retry could be served at all.
  EXPECT_TRUE(eventually([&] { return sock.stats().dropped_responses >= 1; }));
  EXPECT_TRUE(eventually([&] { return server.stats().completed >= 2; }));
  EXPECT_EQ(server.stats().failed, 0);
}

TEST_F(ServeFaultTest, AcceptFailureDoesNotKillListener) {
  ModelRegistry reg(4);
  Server server(reg, fast_opts());
  const ModelSpec spec = tiny_spec("af");
  server.add_model(spec);
  SocketServer sock(server, fast_opts());

  fault::arm("serve.accept_fail", {.fire_at = 0, .count = 1});
  Client client(client_opts(sock.port()));
  const Shape frame{spec.config.in_channels, spec.in_h, spec.in_w};
  // First connection is accepted-then-dropped by the fault; the client's
  // retry reconnects against the still-live listener.
  const Client::Result res = client.infer("af", request_frames(frame, 4, 17));
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_GE(res.retries, 1);
  const SocketServer::TransportStats ts = sock.stats();
  EXPECT_EQ(ts.accept_failures, 1);
  EXPECT_EQ(ts.connections, 1);
}

TEST_F(ServeFaultTest, ReadStallIsReapedByIoTimeout) {
  ModelRegistry reg(4);
  ServeOptions opts = fast_opts();
  opts.io_timeout_ms = 100;  // reap the wedged connection quickly
  Server server(reg, opts);
  const ModelSpec spec = tiny_spec("rs");
  server.add_model(spec);
  SocketServer sock(server, opts);

  fault::arm("serve.read_stall", {.fire_at = 0, .count = 1});
  ClientOptions copts = client_opts(sock.port());
  copts.io_timeout_ms = 400;  // client gives up after the server reaps
  Client client(std::move(copts));
  const Shape frame{spec.config.in_channels, spec.in_h, spec.in_w};
  const Client::Result res = client.infer("rs", request_frames(frame, 4, 19));
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_GE(res.retries, 1);
  EXPECT_TRUE(eventually([&] { return sock.stats().timeouts >= 1; }));
}

// --- graceful degradation ---------------------------------------------------

TEST_F(ServeFaultTest, GoawayOnShutdownStopsClientCleanly) {
  ModelRegistry reg(4);
  Server server(reg, fast_opts());
  const ModelSpec spec = tiny_spec("ga");
  server.add_model(spec);
  SocketServer sock(server, fast_opts());

  Client client(client_opts(sock.port()));
  const Shape frame{spec.config.in_channels, spec.in_h, spec.in_w};
  ASSERT_TRUE(client.infer("ga", request_frames(frame, 4, 23)).ok);

  sock.shutdown();  // goaway every connection, then close once flushed
  const Client::Result res = client.infer("ga", request_frames(frame, 4, 29));
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(client.goaway() ||
              res.status == serve::wire::Status::Rejected)
      << serve::wire::status_name(res.status) << ": " << res.error;
}

TEST_F(ServeFaultTest, DrainTimeoutIsBoundedAndSettlesEveryTicket) {
  // A drain that cannot finish in time must fail the still-queued
  // requests and return false — never hang shutdown. 128 batch-1
  // 16-step requests on one worker cannot clear in 5ms, so the timeout
  // path is guaranteed; batches already cut into the worker queue are
  // abandoned at pickup with the same "drain timeout" error.
  ModelRegistry reg(4);
  ServeOptions opts = fast_opts();
  opts.max_batch = 1;
  opts.workers = 1;
  opts.queue_capacity = 256;
  opts.drain_timeout_ms = 5;
  Server server(reg, opts);
  const ModelSpec spec = tiny_spec("dt", /*batch=*/1);
  server.add_model(spec);
  const Shape frame{spec.config.in_channels, spec.in_h, spec.in_w};

  // Callback completions (the transport-facing API): every outcome is
  // delivered exactly once, and the settled state is read back under a
  // plain mutex rather than rethrown across threads.
  std::mutex mu;
  int ok = 0, drained_away = 0, other = 0;
  std::string first_unexpected;
  for (int i = 0; i < 128; ++i) {
    server.submit_async(
        "dt", request_frames(frame, 16, 100 + i), {},
        [&](serve::Outcome o) {
          std::lock_guard<std::mutex> lock(mu);
          if (o.status == serve::RequestStatus::Ok) {
            ++ok;
          } else if (o.error.find("drain timeout") != std::string::npos) {
            ++drained_away;
          } else {
            if (first_unexpected.empty()) first_unexpected = o.error;
            ++other;
          }
        });
  }
  Timer t;
  const bool clean = server.drain();
  EXPECT_FALSE(clean);
  EXPECT_LT(t.elapsed_ms(), 5000.0);  // bounded, nowhere near unbounded

  // Abandoned batches settle from the worker thread right after drain()
  // returns; wait for the last callback before asserting the tallies.
  ASSERT_TRUE(eventually([&] {
    std::lock_guard<std::mutex> lock(mu);
    return ok + drained_away + other == 128;
  }));
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(other, 0) << first_unexpected;
  EXPECT_EQ(ok + drained_away, 128);  // every request settled: no leaks
  EXPECT_GT(drained_away, 0);
}

// --- the soak ---------------------------------------------------------------

TEST_F(ServeFaultTest, ChaosSoakOverLoopbackStaysCorrect) {
  // 4 clients x 2 models over real loopback TCP with several fault sites
  // armed at once. The invariant is absolute: after retries, every result
  // a client accepts must match the direct-engine reference at 1e-4 —
  // chaos may cost latency, never correctness.
  ModelRegistry reg(4);
  ServeOptions opts = fast_opts();
  opts.max_batch = 4;
  opts.workers = 2;
  opts.io_timeout_ms = 300;
  Server server(reg, opts);
  const ModelSpec spec_a = tiny_spec("sa", /*batch=*/4);
  ModelSpec spec_b = tiny_spec("sb", /*batch=*/4);
  spec_b.config.lif.threshold = 2.f;
  server.add_model(spec_a);
  server.add_model(spec_b);
  ModelHandle da = reg.load(spec_a);
  ModelHandle db = reg.load(spec_b);
  SocketServer sock(server, opts);

  fault::arm("serve.frame_torn", {.fire_at = 5, .count = 2});
  fault::arm("serve.client_disconnect", {.fire_at = 2, .count = 1});
  fault::arm("serve.accept_fail", {.fire_at = 1, .count = 1});
  fault::arm("serve.read_stall", {.fire_at = 20, .count = 1});
  fault::arm("serve.engine_nan", {.fire_at = 6, .count = 1});

  constexpr int kClients = 4;
  constexpr int kPerClient = 12;
  const Shape frame{2, 8, 8};
  std::atomic<int> mismatches{0}, failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ClientOptions copts = client_opts(sock.port());
      copts.io_timeout_ms = 2000;
      copts.max_retries = 10;
      copts.jitter_seed = 1000 + static_cast<std::uint64_t>(c);
      Client client(std::move(copts));
      for (int i = 0; i < kPerClient; ++i) {
        const bool use_a = (c + i) % 2 == 0;
        const auto frames = request_frames(
            frame, 4, static_cast<std::uint64_t>(c) * 100 + i);
        const Client::Result res =
            client.infer(use_a ? "sa" : "sb", frames);
        if (!res.ok) {
          std::fprintf(stderr, "soak client %d req %d: %s (%s)\n", c, i,
                       res.error.c_str(),
                       serve::wire::status_name(res.status));
          ++failures;
          continue;
        }
        const Tensor ref = direct_reference(use_a ? da : db, frames);
        if (Tensor::max_abs_diff(res.value, ref) > 1e-4f) ++mismatches;
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  // The chaos actually happened (the drill is vacuous otherwise).
  EXPECT_GE(fault::hits("serve.frame_torn"), 1);
  EXPECT_GE(fault::hits("serve.accept_fail"), 1);
  EXPECT_GE(fault::hits("serve.engine_nan"), 1);
  fault::reset();  // stop injecting before teardown traffic

  sock.shutdown();
  EXPECT_TRUE(server.drain());  // clean: nothing wedged, nothing leaked
  const serve::ServeStats stats = server.stats();
  EXPECT_GE(stats.completed, kClients * kPerClient);  // retries add more
  EXPECT_GE(stats.quarantined, 1);
}

}  // namespace
}  // namespace snnskip
