// Tests for the double-precision linear algebra used by the GP.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "util/rng.h"

namespace snnskip {
namespace {

Matrix random_spd(std::int64_t n, std::uint64_t seed) {
  // A = B B^T + n*I is SPD for any B.
  Rng rng(seed);
  Matrix b(n, n);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) b(i, j) = rng.normal();
  }
  Matrix a = b * b.transpose();
  a.add_diagonal(static_cast<double>(n));
  return a;
}

TEST(Matrix, IdentityAndIndexing) {
  Matrix m = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
  m(2, 1) = 5.0;
  EXPECT_DOUBLE_EQ(m(2, 1), 5.0);
}

TEST(Matrix, Transpose) {
  Matrix m(2, 3);
  m(0, 1) = 4.0;
  m(1, 2) = -2.0;
  Matrix t = m.transpose();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(t(2, 1), -2.0);
}

TEST(Matrix, MultiplyKnown) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MulVec) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  const auto y = a.mul_vec({1.0, 0.0, -1.0});
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(Matrix, AddDiagonal) {
  Matrix a(3, 3);
  a.add_diagonal(2.5);
  EXPECT_DOUBLE_EQ(a(1, 1), 2.5);
  EXPECT_DOUBLE_EQ(a(0, 1), 0.0);
}

TEST(Cholesky, ReconstructsMatrix) {
  const Matrix a = random_spd(8, 31);
  const auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  const Matrix recon = (*l) * l->transpose();
  for (std::int64_t i = 0; i < 8; ++i) {
    for (std::int64_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(recon(i, j), a(i, j), 1e-9);
    }
  }
}

TEST(Cholesky, LowerTriangular) {
  const Matrix a = random_spd(5, 32);
  const auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  for (std::int64_t i = 0; i < 5; ++i) {
    for (std::int64_t j = i + 1; j < 5; ++j) {
      EXPECT_DOUBLE_EQ((*l)(i, j), 0.0);
    }
  }
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 1.0;  // eigenvalues 3, -1
  EXPECT_FALSE(cholesky(a).has_value());
}

TEST(Cholesky, SolveRecoversKnownSolution) {
  const Matrix a = random_spd(6, 33);
  std::vector<double> x_true(6);
  Rng rng(34);
  for (auto& v : x_true) v = rng.normal();
  const std::vector<double> b = a.mul_vec(x_true);
  const auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  const auto x = cholesky_solve(*l, b);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(x[i], x_true[i], 1e-8);
  }
}

TEST(Cholesky, TriangularSolves) {
  const Matrix a = random_spd(4, 35);
  const auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  const std::vector<double> b{1.0, -2.0, 0.5, 3.0};
  const auto y = solve_lower(*l, b);
  // L y should equal b.
  const auto ly = l->mul_vec(y);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(ly[i], b[i], 1e-10);
  const auto z = solve_lower_transpose(*l, b);
  const auto ltz = l->transpose().mul_vec(z);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(ltz[i], b[i], 1e-10);
}

TEST(Cholesky, LogDetMatchesDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 4.0; a(1, 1) = 9.0;  // det = 36
  const auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  EXPECT_NEAR(cholesky_logdet(*l), std::log(36.0), 1e-12);
}

TEST(Cholesky, IdentityFactorsToItself) {
  const auto l = cholesky(Matrix::identity(4));
  ASSERT_TRUE(l.has_value());
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ((*l)(i, i), 1.0);
  }
}

}  // namespace
}  // namespace snnskip
