// Unit tests for the thread pool and parallel_for helpers.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"

namespace snnskip {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(count.load(), 32);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool touched = false;
  parallel_for(5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, SmallRangeRunsInline) {
  std::vector<int> hits(10, 0);
  parallel_for(0, 10, [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(ParallelForRange, ChunksPartitionTheRange) {
  const std::size_t n = 50000;
  std::atomic<std::size_t> total{0};
  parallel_for_range(0, n, [&](std::size_t b, std::size_t e) {
    total.fetch_add(e - b);
  });
  EXPECT_EQ(total.load(), n);
}

TEST(ParallelForRange, ChunkOverrideForcesPartitionCount) {
  // The override bypasses both the grain and the pool-size heuristics, so
  // tests can exercise 2- or 4-way partition boundaries on any machine
  // (the chunks may still run serially through a 1-worker pool).
  const std::size_t n = 10;  // far below the inline grain
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  auto record = [&](std::size_t b, std::size_t e) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(b, e);
  };

  parallel_for_range(0, n, record);
  EXPECT_EQ(chunks.size(), 1u);  // small range runs inline by default

  for (std::size_t k : {2u, 4u}) {
    chunks.clear();
    set_parallel_chunk_override(k);
    parallel_for_range(0, n, record);
    set_parallel_chunk_override(0);
    EXPECT_EQ(chunks.size(), k);
    std::sort(chunks.begin(), chunks.end());
    std::size_t covered = 0;
    std::size_t expect_begin = 0;
    for (const auto& [b, e] : chunks) {
      EXPECT_EQ(b, expect_begin);  // contiguous, non-overlapping
      EXPECT_LT(b, e);
      covered += e - b;
      expect_begin = e;
    }
    EXPECT_EQ(covered, n);
  }

  // Forcing more chunks than elements clamps to one per element.
  set_parallel_chunk_override(64);
  chunks.clear();
  parallel_for_range(0, 3, record);
  set_parallel_chunk_override(0);
  EXPECT_EQ(chunks.size(), 3u);
}

TEST(ParallelReduce, MatchesSerialSum) {
  const std::size_t n = 20000;
  auto f = [](std::size_t i) { return static_cast<double>(i) * 0.5; };
  double serial = 0.0;
  for (std::size_t i = 0; i < n; ++i) serial += f(i);
  const double par = parallel_reduce_sum(0, n, f);
  EXPECT_DOUBLE_EQ(par, serial);
}

TEST(ParallelReduce, DeterministicAcrossCalls) {
  const std::size_t n = 30000;
  auto f = [](std::size_t i) { return 1.0 / (1.0 + static_cast<double>(i)); };
  const double a = parallel_reduce_sum(0, n, f);
  const double b = parallel_reduce_sum(0, n, f);
  EXPECT_EQ(a, b);  // bitwise identical by design
}

TEST(ParallelReduce, EmptyRangeIsZero) {
  EXPECT_EQ(parallel_reduce_sum(3, 3, [](std::size_t) { return 1.0; }), 0.0);
}

TEST(ParallelFor, ExceptionInBodyPropagates) {
  EXPECT_THROW(
      parallel_for_range(0, 100000,
                         [](std::size_t b, std::size_t) {
                           if (b == 0) throw std::runtime_error("body");
                         }),
      std::runtime_error);
}

// --- nested-submit deadlock guard -------------------------------------------

TEST(ThreadPool, WorkerThreadFlagIsSetOnlyOnPoolThreads) {
  EXPECT_FALSE(ThreadPool::on_worker_thread());
  ThreadPool pool(1);
  auto f = pool.submit([] { return ThreadPool::on_worker_thread(); });
  EXPECT_TRUE(f.get());
  EXPECT_FALSE(ThreadPool::on_worker_thread());
}

TEST(ThreadPool, NestedParallelForInsidePoolTaskDoesNotDeadlock) {
  // A pool task that calls parallel_for over the GLOBAL pool used to risk
  // the classic nested-submit deadlock: the task blocks on chunk futures
  // that only the (fully occupied) pool could run. The worker-thread guard
  // runs nested regions inline instead. Saturate the global pool so every
  // worker is inside a task simultaneously.
  const std::size_t tasks = ThreadPool::global().size() + 2;
  std::vector<std::future<double>> futures;
  for (std::size_t t = 0; t < tasks; ++t) {
    futures.push_back(ThreadPool::global().submit([] {
      // Large enough to pass the inline grain; would submit sub-tasks
      // without the guard.
      return parallel_reduce_sum(0, 50000, [](std::size_t i) {
        return static_cast<double>(i % 7);
      });
    }));
  }
  const double expected = parallel_reduce_sum(
      0, 50000, [](std::size_t i) { return static_cast<double>(i % 7); });
  for (auto& f : futures) {
    EXPECT_EQ(f.get(), expected);  // same partition -> bitwise identical
  }
}

TEST(ThreadPool, NestedParallelForKeepsPartitionDeterminedResults) {
  // The inline fallback must execute the IDENTICAL chunk decomposition,
  // not a serial reformulation — otherwise nested and top-level calls
  // could differ bitwise in floating point.
  auto f = [](std::size_t i) { return 1.0 / (1.0 + static_cast<double>(i)); };
  const double top_level = parallel_reduce_sum(0, 30000, f);
  auto nested = ThreadPool::global().submit(
      [&] { return parallel_reduce_sum(0, 30000, f); });
  EXPECT_EQ(nested.get(), top_level);
}

// --- env-driven sizing -------------------------------------------------------

TEST(ThreadPool, ThreadsFromEnvHonorsPin) {
  // global() is construct-once, so the env contract is tested through the
  // resolution helper rather than by mutating the live pool.
  const char* saved = std::getenv("SNNSKIP_THREADS");
  const std::string saved_value = saved ? saved : "";
  setenv("SNNSKIP_THREADS", "1", 1);
  EXPECT_EQ(ThreadPool::threads_from_env(), 1u);
  setenv("SNNSKIP_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::threads_from_env(), 3u);
  setenv("SNNSKIP_THREADS", "0", 1);  // 0 / negative -> hardware fallback
  EXPECT_GE(ThreadPool::threads_from_env(), 1u);
  setenv("SNNSKIP_THREADS", "-2", 1);
  EXPECT_GE(ThreadPool::threads_from_env(), 1u);
  if (saved) {
    setenv("SNNSKIP_THREADS", saved_value.c_str(), 1);
  } else {
    unsetenv("SNNSKIP_THREADS");
  }
}

TEST(ParallelFor, SingleThreadPoolMatchesMultiChunkResults) {
  // SNNSKIP_THREADS=1 equivalence: chunk results merge in chunk order, so
  // a 1-worker pool (or any worker count) yields bitwise-identical sums
  // for the same forced partition.
  auto f = [](std::size_t i) { return std::sqrt(static_cast<double>(i)); };
  set_parallel_chunk_override(4);
  const double four_chunks = parallel_reduce_sum(0, 4096, f);
  set_parallel_chunk_override(0);
  ThreadPool solo(1);
  // Same forced partition evaluated from a pool worker thread (inline
  // serial path) — the chunk-ordered merge must reproduce it exactly.
  set_parallel_chunk_override(4);
  auto nested = solo.submit([&] { return parallel_reduce_sum(0, 4096, f); });
  const double inline_chunks = nested.get();
  set_parallel_chunk_override(0);
  EXPECT_EQ(inline_chunks, four_chunks);
}

TEST(ParallelReduce, ChunkOverrideChangesPartitionNotDeterminism) {
  // The override interacts with worker sharding: any forced partition must
  // stay self-consistent across repeated calls, and the 1-chunk partition
  // must equal the plain serial loop.
  auto f = [](std::size_t i) { return 1.0 / (3.0 + static_cast<double>(i)); };
  for (std::size_t k : {1u, 2u, 4u, 8u}) {
    set_parallel_chunk_override(k);
    const double a = parallel_reduce_sum(0, 9999, f);
    const double b = parallel_reduce_sum(0, 9999, f);
    set_parallel_chunk_override(0);
    EXPECT_EQ(a, b) << "k=" << k;
  }
  double serial = 0.0;
  for (std::size_t i = 0; i < 9999; ++i) serial += f(i);
  set_parallel_chunk_override(1);
  const double one_chunk = parallel_reduce_sum(0, 9999, f);
  set_parallel_chunk_override(0);
  EXPECT_EQ(one_chunk, serial);
}

}  // namespace
}  // namespace snnskip
