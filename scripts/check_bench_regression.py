#!/usr/bin/env python3
"""Guard the benchmark speedups against regressions.

Re-runs the committed microbenchmarks from an existing build tree and
compares each configuration's speedup against the committed baselines at
the repo root:

  micro_spike_conv    BENCH_spike_conv.json     sparse-vs-dense forward
  micro_spike_bptt    BENCH_spike_bptt.json     sparse-vs-dense fwd+bwd
  micro_data_parallel BENCH_data_parallel.json  sharded-vs-serial step
  micro_infer         BENCH_infer.json          compiled-vs-training eval
  micro_gemm          BENCH_gemm.json           SIMD-vs-scalar microkernel

A configuration FAILS when its fresh speedup falls below
(1 - tolerance) x baseline speedup, default tolerance 25%. Rows are
keyed by the active SIMD level and numeric precision on top of each
bench's own fields (pre-SIMD baselines imply "scalar"; pre-quantization
baselines imply "fp32"), so scalar rows only ever gate against scalar
rows, int8 rows against int8 rows, and tuned-vs-tuned comparisons stay
apples-to-apples. Baseline rows whose SIMD level the fresh run never
produced (e.g. an avx2 baseline re-checked on a non-AVX2 host) are
[simd-unavailable] and informational. Rows measured under a DIFFERENT tuning profile id than
the fresh run ([profile-skew]) are never compared at all: a tuned
profile moves the schedule constants, so the comparison would gate
tuned numbers against untuned ones. Rows whose
baseline speedup is below --min-speedup (default 1.5x) are informational
only: near-threshold and fallback rows are noise-dominated, and a
"regression" from 1.1x to 0.9x is not a kernel problem. Rows that carry a
`hardware_threads` field are additionally gated on the host actually
having the cores the row needs (workers <= hardware_threads on BOTH the
baseline host and this one) — a 1-core runner cannot regress an 8-worker
speedup it never had.

The fresh speedup is the best of --runs repetitions (default 2): a real
regression shows up in every run, while scheduler noise on a loaded box
does not.

The last stdout line is a one-line JSON summary, e.g.
  {"status": "pass", "gated": 12, "info_only": 8, "regressions": 0}
so CI steps can consume the result without parsing the human report; the
exit code is 0 on pass, 1 on any regression or harness failure.
[simd-unavailable] and [profile-skew] advisories go to stderr so they
can never displace the JSON line for consumers tailing stdout.

Usage:
    scripts/check_bench_regression.py [build-dir] [--tolerance 0.25]
        [--min-speedup 1.5] [--min-ms 20] [--runs 2] [--only micro_infer]

stdlib only — no third-party imports.
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# One spec per gated benchmark: the binary (under <build>/bench), the
# committed baseline at the repo root, the fields identifying a row, and
# the speedup metric to gate. `threads_field`, when set, names the row
# field that must not exceed `hardware_threads` for the row to be gated.
BENCHES = [
    {
        "binary": "micro_spike_conv",
        "baseline": "BENCH_spike_conv.json",
        "key": ("channels", "hw", "firing_rate"),
        "metric": "speedup_vs_dense",
        "threads_field": None,
    },
    {
        "binary": "micro_spike_bptt",
        "baseline": "BENCH_spike_bptt.json",
        "key": ("channels", "hw", "firing_rate"),
        "metric": "speedup_vs_dense",
        "threads_field": None,
    },
    {
        "binary": "micro_data_parallel",
        "baseline": "BENCH_data_parallel.json",
        "key": ("shards", "workers"),
        "metric": "speedup_vs_serial",
        "threads_field": "workers",
    },
    {
        "binary": "micro_infer",
        "baseline": "BENCH_infer.json",
        "key": ("width", "hw", "theta", "firing_rate"),
        "metric": "speedup_vs_training",
        "threads_field": None,
    },
    {
        "binary": "micro_gemm",
        "baseline": "BENCH_gemm.json",
        "key": ("shape", "m", "n", "k"),
        "metric": "speedup_vs_scalar_ref",
        "threads_field": None,
    },
    {
        "binary": "serve_load",
        "baseline": "BENCH_serve.json",
        "key": ("models", "clients"),
        "metric": "throughput_vs_serial",
        "threads_field": "workers",
    },
]


def row_key(spec, row):
    # The SIMD level and numeric precision are part of every row's
    # identity: a scalar measurement must never gate an avx2 one, and an
    # int8 row must never gate an fp32 one. Baselines written before the
    # dispatch layer existed carry no "simd" field and were scalar by
    # construction; rows written before the int8 variant were fp32.
    return (tuple(row[f] for f in spec["key"]) +
            (row.get("simd", "scalar"), row.get("precision", "fp32")))


def load_rows(spec, path):
    with open(path) as f:
        return {row_key(spec, r): r for r in json.load(f)}


def run_bench(binary, out_path, min_ms):
    cmd = [str(binary), "--out", str(out_path), "--min-ms", str(min_ms)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"FAIL: {binary.name} exited {proc.returncode} "
                         "(its internal cross-check failed?)")


def has_needed_threads(spec, row):
    """True when the row's host had the cores its worker count asks for."""
    field = spec["threads_field"]
    if field is None or "hardware_threads" not in row:
        return True
    return row[field] <= row["hardware_threads"]


def check(spec, baseline_path, fresh, tolerance, min_speedup, counts):
    name = spec["binary"]
    metric = spec["metric"]
    baseline = load_rows(spec, baseline_path)
    failures = []
    fresh_levels = {r.get("simd", "scalar") for r in fresh.values()}
    for key, base_row in sorted(baseline.items()):
        label = " ".join(f"{f}={v}" for f, v in
                         zip(spec["key"] + ("simd", "precision"), key))
        if key not in fresh:
            # A baseline level this host cannot produce (no AVX2, or the
            # fresh build compiled without it) is not a regression.
            if base_row.get("simd", "scalar") not in fresh_levels:
                counts["info_only"] += 1
                print(f"  {name:20s} {label:28s} [simd-unavailable]",
                      file=sys.stderr)
                continue
            failures.append(f"{name} {key}: missing from fresh run")
            continue
        base_profile = base_row.get("tune_profile", "default")
        fresh_profile = fresh[key].get("tune_profile", "default")
        if base_profile != fresh_profile:
            # Different tuning profiles mean different schedule constants:
            # refuse the comparison rather than gate tuned against untuned.
            counts["info_only"] += 1
            print(f"  {name:20s} {label:28s} [profile-skew: baseline "
                  f"'{base_profile}' vs fresh '{fresh_profile}']",
                  file=sys.stderr)
            continue
        base = base_row[metric]
        new = fresh[key][metric]
        floor = (1.0 - tolerance) * base
        gated = (base >= min_speedup and has_needed_threads(spec, base_row)
                 and has_needed_threads(spec, fresh[key]))
        status = "ok"
        if gated and new < floor:
            status = "REGRESSED"
            failures.append(
                f"{name} {key}: {metric} {new:.2f}x < floor {floor:.2f}x "
                f"(baseline {base:.2f}x)")
        elif not gated:
            status = "info-only"
        counts["gated" if gated else "info_only"] += 1
        print(f"  {name:20s} {label:28s} baseline={base:6.2f}x "
              f"fresh={new:6.2f}x  [{status}]")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("build_dir", nargs="?", default="build")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional speedup drop (default 0.25)")
    ap.add_argument("--min-speedup", type=float, default=1.5,
                    help="only gate rows whose baseline speedup is at least "
                         "this (default 1.5)")
    ap.add_argument("--min-ms", type=float, default=20.0,
                    help="per-config timing budget passed to the benches "
                         "(default 20; the committed baselines used 50)")
    ap.add_argument("--runs", type=int, default=2,
                    help="fresh repetitions per bench; each row keeps its "
                         "best speedup (default 2)")
    ap.add_argument("--only", default=None, metavar="BINARY",
                    help="gate a single bench by binary name (e.g. "
                         "micro_infer); default gates all of them")
    args = ap.parse_args()

    benches = BENCHES
    if args.only is not None:
        benches = [s for s in BENCHES if s["binary"] == args.only]
        if not benches:
            known = ", ".join(s["binary"] for s in BENCHES)
            raise SystemExit(f"error: unknown bench '{args.only}' "
                             f"(known: {known})")

    bench_dir = pathlib.Path(args.build_dir) / "bench"
    if not bench_dir.is_dir():
        raise SystemExit(f"error: '{args.build_dir}' is not a build tree "
                         f"(run: cmake -B {args.build_dir} -S . && "
                         f"cmake --build {args.build_dir} -j)")

    failures = []
    counts = {"gated": 0, "info_only": 0}
    with tempfile.TemporaryDirectory() as tmp:
        for spec in benches:
            binary = bench_dir / spec["binary"]
            baseline = REPO_ROOT / spec["baseline"]
            if not binary.exists():
                raise SystemExit(f"error: {binary} not built")
            if not baseline.exists():
                raise SystemExit(f"error: baseline {baseline} missing")
            print(f"== {spec['binary']} ({args.runs} fresh run(s), "
                  f"--min-ms {args.min_ms}) ==")
            best = {}
            for i in range(max(1, args.runs)):
                fresh = pathlib.Path(tmp) / f"{i}_{spec['baseline']}"
                run_bench(binary, fresh, args.min_ms)
                for key, row in load_rows(spec, fresh).items():
                    if (key not in best or
                            row[spec["metric"]] > best[key][spec["metric"]]):
                        best[key] = row
            failures += check(spec, baseline, best,
                              args.tolerance, args.min_speedup, counts)

    if failures:
        print(f"\n{len(failures)} regression(s):")
        for f in failures:
            print(f"  {f}")
    else:
        print("\nall speedups within tolerance")
    summary = {
        "status": "fail" if failures else "pass",
        "gated": counts["gated"],
        "info_only": counts["info_only"],
        "regressions": len(failures),
    }
    print(json.dumps(summary))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
