#!/usr/bin/env python3
"""Guard the sparse-kernel speedups against regressions.

Re-runs the two spike-kernel microbenchmarks (forward: micro_spike_conv,
ISSUE 1; train-mode fwd+bwd: micro_spike_bptt, ISSUE 4) from an existing
build tree and compares each configuration's sparse-vs-dense speedup
against the committed baselines (BENCH_spike_conv.json /
BENCH_spike_bptt.json at the repo root).

A configuration FAILS when its fresh speedup falls below
(1 - tolerance) x baseline speedup, default tolerance 25%. Rows whose
baseline speedup is below --min-speedup (default 1.5x) are informational
only: near-threshold and dense-fallback rows are noise-dominated, and a
"regression" from 1.1x to 0.9x is not a kernel problem.

The fresh speedup is the best of --runs repetitions (default 2): a real
kernel regression shows up in every run, while scheduler noise on a
loaded box does not.

Usage:
    scripts/check_bench_regression.py [build-dir] [--tolerance 0.25]
        [--min-speedup 1.5] [--min-ms 20] [--runs 2]

stdlib only — no third-party imports.
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

BENCHES = [
    ("micro_spike_conv", "BENCH_spike_conv.json"),
    ("micro_spike_bptt", "BENCH_spike_bptt.json"),
]


def row_key(row):
    return (row["channels"], row["hw"], row["firing_rate"])


def load_rows(path):
    with open(path) as f:
        return {row_key(r): r for r in json.load(f)}


def run_bench(binary, out_path, min_ms):
    cmd = [str(binary), "--out", str(out_path), "--min-ms", str(min_ms)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"FAIL: {binary.name} exited {proc.returncode} "
                         "(its internal sparse/dense cross-check failed?)")


def check(name, baseline_path, fresh, tolerance, min_speedup):
    baseline = load_rows(baseline_path)
    failures = []
    for key, base_row in sorted(baseline.items()):
        if key not in fresh:
            failures.append(f"{name} {key}: missing from fresh run")
            continue
        base = base_row["speedup_vs_dense"]
        new = fresh[key]["speedup_vs_dense"]
        floor = (1.0 - tolerance) * base
        gated = base >= min_speedup
        status = "ok"
        if gated and new < floor:
            status = "REGRESSED"
            failures.append(
                f"{name} C={key[0]} hw={key[1]} rate={key[2]}: "
                f"speedup {new:.2f}x < floor {floor:.2f}x "
                f"(baseline {base:.2f}x)")
        elif not gated:
            status = "info-only"
        print(f"  {name:18s} C={key[0]:<4} hw={key[1]:<3} rate={key[2]:<5} "
              f"baseline={base:6.2f}x fresh={new:6.2f}x  [{status}]")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("build_dir", nargs="?", default="build")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional speedup drop (default 0.25)")
    ap.add_argument("--min-speedup", type=float, default=1.5,
                    help="only gate rows whose baseline speedup is at least "
                         "this (default 1.5)")
    ap.add_argument("--min-ms", type=float, default=20.0,
                    help="per-config timing budget passed to the benches "
                         "(default 20; the committed baselines used 50)")
    ap.add_argument("--runs", type=int, default=2,
                    help="fresh repetitions per bench; each row keeps its "
                         "best speedup (default 2)")
    args = ap.parse_args()

    bench_dir = pathlib.Path(args.build_dir) / "bench"
    if not bench_dir.is_dir():
        raise SystemExit(f"error: '{args.build_dir}' is not a build tree "
                         f"(run: cmake -B {args.build_dir} -S . && "
                         f"cmake --build {args.build_dir} -j)")

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        for binary_name, baseline_name in BENCHES:
            binary = bench_dir / binary_name
            baseline = REPO_ROOT / baseline_name
            if not binary.exists():
                raise SystemExit(f"error: {binary} not built")
            if not baseline.exists():
                raise SystemExit(f"error: baseline {baseline} missing")
            print(f"== {binary_name} ({args.runs} fresh run(s), "
                  f"--min-ms {args.min_ms}) ==")
            best = {}
            for i in range(max(1, args.runs)):
                fresh = pathlib.Path(tmp) / f"{i}_{baseline_name}"
                run_bench(binary, fresh, args.min_ms)
                for key, row in load_rows(fresh).items():
                    if (key not in best or row["speedup_vs_dense"] >
                            best[key]["speedup_vs_dense"]):
                        best[key] = row
            failures += check(binary_name, baseline, best,
                              args.tolerance, args.min_speedup)

    if failures:
        print(f"\n{len(failures)} regression(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nall speedups within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
