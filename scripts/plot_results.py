#!/usr/bin/env python3
"""Render the bench CSVs as figures mirroring the paper's plots.

Usage:
    python3 scripts/plot_results.py [csv_dir] [out_dir]

Reads whichever of the bench CSVs exist in `csv_dir` (default: cwd) and
writes PNGs to `out_dir` (default: csv_dir). Requires matplotlib; degrades
to a message per missing file rather than failing.
"""

import csv
import os
import sys


def load(path):
    with open(path, newline="") as fh:
        return list(csv.DictReader(fh))


def plot_fig1(rows, out, plt):
    fig, (ax_acc, ax_rate) = plt.subplots(1, 2, figsize=(9, 3.5))
    for kind, color in (("dsc", "tab:blue"), ("asc", "tab:orange")):
        pts = [r for r in rows if r["type"] == kind]
        n = [int(r["n_skip"]) for r in pts]
        acc = [100 * float(r["acc_mean"]) for r in pts]
        astd = [100 * float(r["acc_std"]) for r in pts]
        rate = [100 * float(r["rate_mean"]) for r in pts]
        rstd = [100 * float(r["rate_std"]) for r in pts]
        ax_acc.errorbar(n, acc, yerr=astd, marker="o", label=kind.upper(),
                        color=color, capsize=3)
        ax_rate.errorbar(n, rate, yerr=rstd, marker="s", label=kind.upper(),
                         color=color, capsize=3)
    ax_acc.set_xlabel("n_skip"); ax_acc.set_ylabel("test accuracy (%)")
    ax_rate.set_xlabel("n_skip"); ax_rate.set_ylabel("firing rate (%)")
    ax_acc.legend(); ax_rate.legend()
    fig.suptitle("Fig. 1 (right): skip-connection sweep")
    fig.tight_layout()
    fig.savefig(out)


def plot_fig3(rows, out, plt):
    it = [int(r["iteration"]) for r in rows]
    bo = [100 * float(r["bo_mean"]) for r in rows]
    bs = [100 * float(r["bo_std"]) for r in rows]
    rs = [100 * float(r["rs_mean"]) for r in rows]
    rss = [100 * float(r["rs_std"]) for r in rows]
    fig, ax = plt.subplots(figsize=(5.5, 3.5))
    ax.plot(it, bo, marker="o", color="tab:blue", label="Bayesian opt")
    ax.fill_between(it, [m - s for m, s in zip(bo, bs)],
                    [m + s for m, s in zip(bo, bs)], alpha=0.2,
                    color="tab:blue")
    ax.plot(it, rs, marker="s", color="tab:red", label="random search")
    ax.fill_between(it, [m - s for m, s in zip(rs, rss)],
                    [m + s for m, s in zip(rs, rss)], alpha=0.2,
                    color="tab:red")
    ax.set_xlabel("iteration"); ax.set_ylabel("best accuracy so far (%)")
    ax.legend(); ax.set_title("Fig. 3: BO vs random search")
    fig.tight_layout()
    fig.savefig(out)


def plot_table1(rows, out, plt):
    labels = [f"{r['dataset']}\n{r['model']}" for r in rows]
    snn = [100 * float(r["snn_acc"]) for r in rows]
    opt = [100 * float(r["opt_acc"]) for r in rows]
    x = range(len(rows))
    fig, ax = plt.subplots(figsize=(10, 3.8))
    ax.bar([i - 0.2 for i in x], snn, width=0.4, label="vanilla SNN",
           color="tab:gray")
    ax.bar([i + 0.2 for i in x], opt, width=0.4, label="optimized SNN",
           color="tab:green")
    ax.set_xticks(list(x)); ax.set_xticklabels(labels, fontsize=7)
    ax.set_ylabel("test accuracy (%)"); ax.legend()
    ax.set_title("Table I: vanilla vs skip-optimized SNN")
    fig.tight_layout()
    fig.savefig(out)


def main():
    csv_dir = sys.argv[1] if len(sys.argv) > 1 else "."
    out_dir = sys.argv[2] if len(sys.argv) > 2 else csv_dir
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    jobs = [
        ("fig1_skip_sweep.csv", "fig1_skip_sweep.png", plot_fig1),
        ("fig3_bo_vs_rs.csv", "fig3_bo_vs_rs.png", plot_fig3),
        ("table1_comparison.csv", "table1_comparison.png", plot_table1),
    ]
    for src, dst, fn in jobs:
        path = os.path.join(csv_dir, src)
        if not os.path.exists(path):
            print(f"skip: {src} not found (run the matching bench first)")
            continue
        fn(load(path), os.path.join(out_dir, dst), plt)
        print(f"wrote {dst}")


if __name__ == "__main__":
    main()
