#!/usr/bin/env bash
# Run the fast ctest smokes (the bench-binary cross-checks, not the full
# gtest tier) against an existing build tree.
#
#   scripts/run_smokes.sh [build-dir]
#
# Default build dir is ./build. The smokes are also registered with ctest,
# so `ctest -R smoke` inside the build dir is equivalent; this wrapper
# exists so CI and humans invoke them the same way without remembering
# binary paths or output-file flags.

set -euo pipefail
trap 'echo "error: ${BASH_SOURCE[0]}:${LINENO}: \`${BASH_COMMAND}\` failed" >&2' ERR

BUILD_DIR="${1:-build}"

if [[ ! -d "${BUILD_DIR}/bench" ]]; then
  echo "error: '${BUILD_DIR}' is not a build tree (run: cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j)" >&2
  exit 1
fi

for bin in micro_spike_conv micro_spike_bptt micro_data_parallel micro_infer serve_load telemetry_smoke; do
  if [[ ! -x "${BUILD_DIR}/bench/${bin}" ]]; then
    echo "error: ${BUILD_DIR}/bench/${bin} not built (stale tree? re-run cmake --build ${BUILD_DIR} -j)" >&2
    exit 1
  fi
done

echo "== micro_spike_conv smoke (sparse-vs-dense cross-check) =="
"${BUILD_DIR}/bench/micro_spike_conv" --smoke 1 \
  --out "${BUILD_DIR}/bench/BENCH_spike_conv_smoke.json"

echo
echo "== micro_spike_bptt smoke (bit-for-bit backward cross-check) =="
"${BUILD_DIR}/bench/micro_spike_bptt" --smoke 1 \
  --out "${BUILD_DIR}/bench/BENCH_spike_bptt_smoke.json"

echo
echo "== micro_data_parallel smoke (bitwise worker-invariance cross-check) =="
"${BUILD_DIR}/bench/micro_data_parallel" --smoke 1 \
  --out "${BUILD_DIR}/bench/BENCH_data_parallel_smoke.json"

echo
echo "== micro_infer smoke (compiled plan vs training eval cross-check) =="
"${BUILD_DIR}/bench/micro_infer" --smoke 1 \
  --out "${BUILD_DIR}/bench/BENCH_infer_smoke.json"

echo
echo "== serve_load smoke (served vs direct-engine cross-check) =="
"${BUILD_DIR}/bench/serve_load" --smoke 1 \
  --out "${BUILD_DIR}/bench/BENCH_serve_smoke.json"

echo
echo "== serve_load socket smoke (loopback TCP vs in-process cross-check) =="
"${BUILD_DIR}/bench/serve_load" --smoke 1 --transport socket \
  --out "${BUILD_DIR}/bench/BENCH_serve_socket_smoke.json"

echo
echo "== telemetry smoke (trace export + validation) =="
"${BUILD_DIR}/bench/telemetry_smoke" \
  --out "${BUILD_DIR}/bench/BENCH_telemetry_trace.json"

echo
echo "all smokes passed"
