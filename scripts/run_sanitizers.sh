#!/usr/bin/env bash
# Build the library and test suites under sanitizers and run ctest.
#
#   scripts/run_sanitizers.sh [build-dir]          # ASan + UBSan, full tier-1
#   scripts/run_sanitizers.sh --tsan [build-dir]   # TSan, concurrency suites
#
# Default build dirs are ./build-asan and ./build-tsan (kept separate from
# ./build so a sanitizer run never dirties the regular tree). Uses the
# SNNSKIP_SANITIZE / SNNSKIP_SANITIZE_THREAD CMake options, so any build
# system that sets them gets the same instrumentation without this wrapper.
#
# The TSan mode is scoped to the suites that actually spawn threads
# (thread pool, data-parallel training, concurrent inference engines, the
# serving daemon) — TSan roughly 10x-es the single-threaded suites for no
# additional coverage, and ASan/TSan cannot share one build tree.

set -euo pipefail
trap 'echo "error: ${BASH_SOURCE[0]}:${LINENO}: \`${BASH_COMMAND}\` failed" >&2' ERR

MODE="asan"
if [[ "${1:-}" == "--tsan" ]]; then
  MODE="tsan"
  shift
fi

BUILD_DIR="${1:-build-${MODE}}"

if [[ ! -f CMakeLists.txt ]]; then
  echo "error: run from the repository root (CMakeLists.txt not found)" >&2
  exit 1
fi

if [[ "${MODE}" == "tsan" ]]; then
  echo "== configure (${BUILD_DIR}, TSan) =="
  # Fault points stay compiled in (explicitly, in case the default ever
  # flips): the serve chaos drills must run under TSan, not just the
  # happy path.
  cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSNNSKIP_SANITIZE_THREAD=ON \
    -DSNNSKIP_FAULT_POINTS=ON
else
  echo "== configure (${BUILD_DIR}, ASan+UBSan) =="
  cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSNNSKIP_SANITIZE=ON
fi

echo
echo "== build =="
cmake --build "${BUILD_DIR}" -j

echo
if [[ "${MODE}" == "tsan" ]]; then
  echo "== ctest (concurrency suites under TSan) =="
  # Suites that exercise real threads: the pool itself, data-parallel
  # gradient reduction, concurrent Engines with distinct ExecOptions, the
  # serving daemon (dispatcher + workers + client threads), the serve
  # chaos drills (loopback TCP, armed fault sites, concurrent clients),
  # and both serve_load smokes' closed-loop clients.
  (
    cd "${BUILD_DIR}"
    TSAN_OPTIONS="halt_on_error=1" \
      ctest --output-on-failure -j "$(nproc)" \
      -R '(ParallelTest|ThreadPool|DataParallel|Concurrent|ServerTest|ModelRegistryTest|ServeFault|serve_load_smoke|serve_load_socket_smoke)'
  )
else
  echo "== ctest (tier-1 + fault suite) =="
  # halt_on_error keeps a UBSan report from being drowned out by later
  # tests; detect_leaks stays on (the default) to catch arena/workspace
  # mistakes.
  (
    cd "${BUILD_DIR}"
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
      ctest --output-on-failure -j "$(nproc)"
  )
fi

echo
echo "sanitizer pass clean (${MODE})"
