#!/usr/bin/env bash
# Build the library and test suites with AddressSanitizer + UBSan and run
# the tier-1 ctest pass (which includes the fault-injection suite).
#
#   scripts/run_sanitizers.sh [build-dir]
#
# Default build dir is ./build-asan (kept separate from ./build so a
# sanitizer run never dirties the regular tree). Uses the SNNSKIP_SANITIZE
# CMake option, so any build system that sets -DSNNSKIP_SANITIZE=ON gets
# the same instrumentation without this wrapper.

set -euo pipefail
trap 'echo "error: ${BASH_SOURCE[0]}:${LINENO}: \`${BASH_COMMAND}\` failed" >&2' ERR

BUILD_DIR="${1:-build-asan}"

if [[ ! -f CMakeLists.txt ]]; then
  echo "error: run from the repository root (CMakeLists.txt not found)" >&2
  exit 1
fi

echo "== configure (${BUILD_DIR}, ASan+UBSan) =="
cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSNNSKIP_SANITIZE=ON

echo
echo "== build =="
cmake --build "${BUILD_DIR}" -j

echo
echo "== ctest (tier-1 + fault suite) =="
# halt_on_error keeps a UBSan report from being drowned out by later tests;
# detect_leaks stays on (the default) to catch arena/workspace mistakes.
(
  cd "${BUILD_DIR}"
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ctest --output-on-failure -j "$(nproc)"
)

echo
echo "sanitizer pass clean"
